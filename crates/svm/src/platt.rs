//! Platt scaling: probability estimates from SVM decision values.
//!
//! Fits a sigmoid `P(y = 1 | f) = 1 / (1 + exp(A·f + B))` to the decision
//! values of a trained machine by regularised maximum likelihood, using
//! the numerically robust Newton iteration of Lin, Lin & Weng (2007) —
//! the procedure behind LIBSVM's `-b 1` option.

use crate::SvmModel;
use dls_sparse::{Scalar, SparseVec};

/// A fitted probability calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlattScaling {
    /// Sigmoid slope (negative for well-oriented machines).
    pub a: f64,
    /// Sigmoid offset.
    pub b: f64,
}

impl PlattScaling {
    /// Fits the sigmoid on `(decision value, ±1 label)` pairs.
    ///
    /// # Panics
    /// Panics if the slices differ in length or are empty.
    pub fn fit(decision_values: &[Scalar], labels: &[Scalar]) -> Self {
        assert_eq!(decision_values.len(), labels.len(), "length mismatch");
        assert!(!decision_values.is_empty(), "need at least one sample");
        let n = decision_values.len();
        let n_pos = labels.iter().filter(|&&y| y > 0.0).count() as f64;
        let n_neg = n as f64 - n_pos;

        // Regularised targets (avoid 0/1 saturation).
        let hi = (n_pos + 1.0) / (n_pos + 2.0);
        let lo = 1.0 / (n_neg + 2.0);
        let t: Vec<f64> = labels.iter().map(|&y| if y > 0.0 { hi } else { lo }).collect();

        // Newton with backtracking on (a, b).
        let mut a = 0.0f64;
        let mut b = ((n_neg + 1.0) / (n_pos + 1.0)).ln();
        let sigma = 1e-12;
        let max_iter = 100;

        let nll = |a: f64, b: f64| -> f64 {
            decision_values
                .iter()
                .zip(&t)
                .map(|(&f, &ti)| {
                    let fapb = a * f + b;
                    // Stable log(1 + exp(x)) forms.
                    if fapb >= 0.0 {
                        ti * fapb + (1.0 + (-fapb).exp()).ln()
                    } else {
                        (ti - 1.0) * fapb + (1.0 + fapb.exp()).ln()
                    }
                })
                .sum()
        };

        let mut fval = nll(a, b);
        for _ in 0..max_iter {
            // Gradient and Hessian.
            let (mut g1, mut g2) = (0.0f64, 0.0f64);
            let (mut h11, mut h22, mut h21) = (sigma, sigma, 0.0f64);
            for (&f, &ti) in decision_values.iter().zip(&t) {
                let fapb = a * f + b;
                let (p, q) = if fapb >= 0.0 {
                    let e = (-fapb).exp();
                    (e / (1.0 + e), 1.0 / (1.0 + e))
                } else {
                    let e = fapb.exp();
                    (1.0 / (1.0 + e), e / (1.0 + e))
                };
                let d1 = ti - p;
                let d2 = p * q;
                g1 += f * d1;
                g2 += d1;
                h11 += f * f * d2;
                h22 += d2;
                h21 += f * d2;
            }
            if g1.abs() < 1e-5 && g2.abs() < 1e-5 {
                break;
            }
            // Newton direction (2x2 solve).
            let det = h11 * h22 - h21 * h21;
            let da = -(h22 * g1 - h21 * g2) / det;
            let db = -(-h21 * g1 + h11 * g2) / det;
            let gd = g1 * da + g2 * db;
            // Backtracking line search.
            let mut step = 1.0f64;
            let mut improved = false;
            while step >= 1e-10 {
                let (na, nb) = (a + step * da, b + step * db);
                let nf = nll(na, nb);
                if nf < fval + 1e-4 * step * gd {
                    a = na;
                    b = nb;
                    fval = nf;
                    improved = true;
                    break;
                }
                step /= 2.0;
            }
            if !improved {
                break;
            }
        }
        Self { a, b }
    }

    /// Probability that the sample with decision value `f` is positive.
    pub fn probability(&self, decision_value: Scalar) -> f64 {
        let fapb = self.a * decision_value + self.b;
        if fapb >= 0.0 {
            (-fapb).exp() / (1.0 + (-fapb).exp())
        } else {
            1.0 / (1.0 + fapb.exp())
        }
    }
}

/// A classifier with calibrated probability outputs.
#[derive(Debug, Clone)]
pub struct ProbabilisticModel {
    model: SvmModel,
    scaling: PlattScaling,
}

impl ProbabilisticModel {
    /// Calibrates a trained model on held-out (or training) data.
    pub fn calibrate(model: SvmModel, x_rows: &[SparseVec], y: &[Scalar]) -> Self {
        let decisions: Vec<Scalar> = x_rows.iter().map(|r| model.decision_function(r)).collect();
        let scaling = PlattScaling::fit(&decisions, y);
        Self { model, scaling }
    }

    /// The underlying SVM.
    pub fn model(&self) -> &SvmModel {
        &self.model
    }

    /// The fitted sigmoid.
    pub fn scaling(&self) -> PlattScaling {
        self.scaling
    }

    /// `P(y = +1 | x)`.
    pub fn predict_probability(&self, x: &SparseVec) -> f64 {
        self.scaling.probability(self.model.decision_function(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train, KernelKind, SmoParams};
    use dls_sparse::{CsrMatrix, MatrixFormat, TripletMatrix};

    #[test]
    fn sigmoid_fits_well_separated_scores() {
        // Positive labels around f = +2, negatives around f = −2.
        let decisions = [2.0, 2.5, 1.5, -2.0, -2.5, -1.5];
        let labels = [1.0, 1.0, 1.0, -1.0, -1.0, -1.0];
        let s = PlattScaling::fit(&decisions, &labels);
        assert!(s.probability(3.0) > 0.8, "p(+|3) = {}", s.probability(3.0));
        assert!(s.probability(-3.0) < 0.2, "p(+|-3) = {}", s.probability(-3.0));
        // Monotone in f.
        assert!(s.probability(1.0) > s.probability(-1.0));
    }

    #[test]
    fn probabilities_are_valid_and_monotone() {
        let decisions = [0.5, -0.5, 1.0, -1.0, 0.2, -0.2];
        let labels = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let s = PlattScaling::fit(&decisions, &labels);
        let mut last = 0.0;
        for f in [-5.0, -1.0, 0.0, 1.0, 5.0] {
            let p = s.probability(f);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= last, "monotone");
            last = p;
        }
    }

    #[test]
    fn end_to_end_calibrated_classifier() {
        let mut t = TripletMatrix::new(10, 1);
        let mut y = Vec::new();
        for i in 0..10 {
            let v = (i as f64 - 4.5) / 2.0;
            t.push(i, 0, v);
            y.push(if v > 0.0 { 1.0 } else { -1.0 });
        }
        let x = CsrMatrix::from_triplets(&t.compact());
        let params = SmoParams { kernel: KernelKind::Linear, ..Default::default() };
        let model = train(&x, &y, &params).unwrap();
        let rows: Vec<SparseVec> = (0..10).map(|i| x.row_sparse(i)).collect();
        let prob = ProbabilisticModel::calibrate(model, &rows, &y);
        let far_pos = SparseVec::new(1, vec![0], vec![5.0]);
        let far_neg = SparseVec::new(1, vec![0], vec![-5.0]);
        assert!(prob.predict_probability(&far_pos) > 0.9);
        assert!(prob.predict_probability(&far_neg) < 0.1);
        // Near the boundary the probability is uncertain.
        let mid = SparseVec::zeros(1);
        let p = prob.predict_probability(&mid);
        assert!((0.2..=0.8).contains(&p), "boundary p = {p}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fit_rejects_mismatched_inputs() {
        let _ = PlattScaling::fit(&[1.0], &[1.0, -1.0]);
    }
}
