//! The standard kernel functions (paper Table I).
//!
//! | Kernel     | `K(X_i, X_j)`                      |
//! |------------|------------------------------------|
//! | Linear     | `X_iᵀ X_j`                         |
//! | Polynomial | `(a X_iᵀ X_j + r)^d`               |
//! | Gaussian   | `exp(−γ ‖X_i − X_j‖²)`             |
//! | Sigmoid    | `tanh(a X_iᵀ X_j + r)`             |
//!
//! All four are computable from the inner product plus the two squared
//! norms, so one SMSV per selected sample yields a whole kernel row.

use dls_sparse::Scalar;

/// Kernel function selector with its hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelKind {
    /// `X_iᵀ X_j`
    Linear,
    /// `(a·X_iᵀX_j + r)^degree`
    Polynomial {
        /// Scale applied to the inner product.
        a: Scalar,
        /// Additive constant.
        r: Scalar,
        /// Polynomial degree.
        degree: u32,
    },
    /// `exp(-gamma * ||X_i - X_j||^2)`
    Gaussian {
        /// Width parameter γ.
        gamma: Scalar,
    },
    /// `tanh(a·X_iᵀX_j + r)`
    Sigmoid {
        /// Scale applied to the inner product.
        a: Scalar,
        /// Additive constant.
        r: Scalar,
    },
}

impl KernelKind {
    /// Evaluates the kernel given the inner product `dot = X_iᵀ X_j` and the
    /// squared norms of both vectors.
    #[inline]
    pub fn apply(&self, dot: Scalar, norm_i_sq: Scalar, norm_j_sq: Scalar) -> Scalar {
        match *self {
            KernelKind::Linear => dot,
            KernelKind::Polynomial { a, r, degree } => (a * dot + r).powi(degree as i32),
            KernelKind::Gaussian { gamma } => {
                let dist_sq = (norm_i_sq + norm_j_sq - 2.0 * dot).max(0.0);
                (-gamma * dist_sq).exp()
            }
            KernelKind::Sigmoid { a, r } => (a * dot + r).tanh(),
        }
    }

    /// Applies the kernel to a whole row of inner products in place:
    /// `dots[i] = K(X_i, X_j)` given `dots[i] = X_i · X_j` on entry.
    pub fn apply_row(&self, dots: &mut [Scalar], norms_sq: &[Scalar], norm_j_sq: Scalar) {
        debug_assert_eq!(dots.len(), norms_sq.len());
        match *self {
            KernelKind::Linear => {}
            _ => {
                for (d, &ni) in dots.iter_mut().zip(norms_sq) {
                    *d = self.apply(*d, ni, norm_j_sq);
                }
            }
        }
    }

    /// Whether the induced Gram matrix is guaranteed positive semi-definite
    /// (sigmoid is not a PSD kernel in general, so SMO must guard η ≤ 0).
    pub fn is_psd(&self) -> bool {
        !matches!(self, KernelKind::Sigmoid { .. })
    }

    /// Short lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::Linear => "linear",
            KernelKind::Polynomial { .. } => "polynomial",
            KernelKind::Gaussian { .. } => "gaussian",
            KernelKind::Sigmoid { .. } => "sigmoid",
        }
    }
}

impl Default for KernelKind {
    /// Defaults to the Gaussian kernel with γ = 0.5, LIBSVM's customary
    /// starting point for normalised data.
    fn default() -> Self {
        KernelKind::Gaussian { gamma: 0.5 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_the_dot_product() {
        assert_eq!(KernelKind::Linear.apply(3.5, 9.0, 4.0), 3.5);
    }

    #[test]
    fn polynomial_matches_formula() {
        let k = KernelKind::Polynomial { a: 2.0, r: 1.0, degree: 3 };
        assert_eq!(k.apply(2.0, 0.0, 0.0), 125.0);
    }

    #[test]
    fn gaussian_of_identical_points_is_one() {
        let k = KernelKind::Gaussian { gamma: 0.7 };
        // identical vectors: dist² = n + n − 2n = 0
        assert_eq!(k.apply(5.0, 5.0, 5.0), 1.0);
    }

    #[test]
    fn gaussian_decays_with_distance() {
        let k = KernelKind::Gaussian { gamma: 1.0 };
        let near = k.apply(0.9, 1.0, 1.0);
        let far = k.apply(0.0, 1.0, 1.0);
        assert!(near > far);
        assert!((far - (-2.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn gaussian_clamps_negative_distance() {
        // Rounded inner products can make dist² slightly negative; the
        // kernel must clamp rather than return > 1.
        let k = KernelKind::Gaussian { gamma: 1.0 };
        assert!(k.apply(1.0 + 1e-9, 1.0, 1.0) <= 1.0);
    }

    #[test]
    fn sigmoid_matches_tanh() {
        let k = KernelKind::Sigmoid { a: 0.5, r: -1.0 };
        assert!((k.apply(4.0, 0.0, 0.0) - 1.0f64.tanh()).abs() < 1e-12);
        assert!(!k.is_psd());
        assert!(KernelKind::Linear.is_psd());
    }

    #[test]
    fn apply_row_matches_pointwise() {
        let k = KernelKind::Gaussian { gamma: 0.3 };
        let norms = [1.0, 4.0, 9.0];
        let mut dots = [0.5, 1.0, -2.0];
        let expect: Vec<f64> = dots.iter().zip(&norms).map(|(&d, &n)| k.apply(d, n, 2.0)).collect();
        k.apply_row(&mut dots, &norms, 2.0);
        assert_eq!(dots.to_vec(), expect);
    }

    #[test]
    fn names() {
        assert_eq!(KernelKind::default().name(), "gaussian");
        assert_eq!(KernelKind::Linear.name(), "linear");
    }
}
