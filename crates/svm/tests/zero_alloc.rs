//! Proof that the steady-state SMO loop is allocation-free.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! phase has filled the kernel-row cache with every working-set row, a
//! measured segment of real SMO iterations must perform exactly zero heap
//! allocations — the borrowed row views, the reusable SMSV workspace and
//! the persistent kernel-row buffers leave nothing to allocate.
//!
//! This file must stay the *only* test in its binary: the allocation
//! counter is process-global, and a concurrently running test would
//! pollute it.

use dls_sparse::{AnyMatrix, Format, TripletMatrix};
use dls_svm::{KernelKind, SmoParams, SmoState};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Overlapping 1-D clusters: slow to converge, so the working set keeps
/// cycling through the same boundary rows long after the cache is warm.
fn twin_clusters(n: usize) -> (TripletMatrix, Vec<f64>) {
    let mut t = TripletMatrix::new(n, 2);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
        let jitter = (i as f64 * 0.77).sin();
        t.push(i, 0, sign * 0.5 + jitter * 0.9);
        t.push(i, 1, (i as f64 * 0.31).cos());
        y.push(sign);
    }
    (t.compact(), y)
}

#[test]
fn steady_state_smo_iterations_do_not_allocate() {
    let (t, y) = twin_clusters(48);
    let params = SmoParams {
        kernel: KernelKind::Gaussian { gamma: 0.7 },
        c: 10.0,
        tolerance: 1e-6, // tight: keeps the solver iterating long enough
        ..Default::default()
    };

    for fmt in [Format::Csr, Format::Den] {
        let x = AnyMatrix::from_triplets(fmt, &t);
        let mut state = SmoState::new(&x, &y, &params).unwrap();

        // Warm up until one whole segment runs without a single cache miss
        // — from then on every kernel row is served from the cache.
        let mut warm = false;
        for _ in 0..200 {
            assert!(state.can_continue(&params), "{fmt}: converged before steady state");
            let rep = state.run_segment(&x, &params, 25);
            if rep.smsv_count == 0 {
                warm = true;
                break;
            }
        }
        assert!(warm, "{fmt}: never reached a miss-free segment");

        let before = ALLOCS.load(Ordering::Relaxed);
        let rep = state.run_segment(&x, &params, 25);
        let after = ALLOCS.load(Ordering::Relaxed);
        assert!(rep.iterations > 0, "{fmt}: measured segment did no work");
        assert_eq!(
            after - before,
            0,
            "{fmt}: {} allocations in {} steady-state iterations",
            after - before,
            rep.iterations
        );
    }
}
