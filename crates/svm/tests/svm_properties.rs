//! Property-based tests for the SMO solver: KKT/dual invariants must hold
//! on arbitrary (valid) training problems, and the solution must be
//! invariant to the storage layout.

#![allow(clippy::needless_range_loop)]

use dls_sparse::{AnyMatrix, Format, TripletMatrix};
use dls_svm::{train_with_stats, KernelKind, SmoParams};
use proptest::prelude::*;

/// Strategy: a random training problem with both classes present.
/// Features are bounded so kernels stay well-conditioned.
fn arb_problem() -> impl Strategy<Value = (TripletMatrix, Vec<f64>)> {
    (4usize..20, 2usize..8)
        .prop_flat_map(|(n, d)| {
            let entry = (0..n, 0..d, -3i32..=3).prop_map(|(r, c, v)| (r, c, v as f64));
            let entries = proptest::collection::vec(entry, n..n * 3);
            let labels = proptest::collection::vec(prop_oneof![Just(1.0), Just(-1.0)], n);
            (Just(n), Just(d), entries, labels)
        })
        .prop_filter_map("need both classes", |(n, d, entries, labels)| {
            if labels.contains(&1.0) && labels.contains(&-1.0) {
                let t = TripletMatrix::from_entries(n, d, entries).ok()?.compact();
                Some((t, labels))
            } else {
                None
            }
        })
}

fn params(c: f64, kernel: KernelKind) -> SmoParams {
    SmoParams { c, kernel, max_iterations: 20_000, ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dual feasibility: Σ α_i y_i = 0 and |α_i y_i| ≤ C at the solution,
    /// for every kernel.
    #[test]
    fn dual_constraints_hold((t, y) in arb_problem(), c in 0.25f64..8.0) {
        let x = AnyMatrix::from_triplets(Format::Csr, &t);
        for kernel in [
            KernelKind::Linear,
            KernelKind::Gaussian { gamma: 0.5 },
            KernelKind::Polynomial { a: 1.0, r: 1.0, degree: 2 },
        ] {
            let (model, _) = train_with_stats(&x, &y, &params(c, kernel)).unwrap();
            let sum: f64 = model.coefficients().iter().sum();
            prop_assert!(sum.abs() < 1e-6, "{kernel:?}: sum alpha y = {sum}");
            for &coef in model.coefficients() {
                prop_assert!(coef.abs() <= c + 1e-9, "{kernel:?}: coef {coef} beyond C={c}");
            }
        }
    }

    /// Layout invariance: every storage format reaches the same iteration
    /// count, bias, and predictions.
    #[test]
    fn solution_is_layout_invariant((t, y) in arb_problem()) {
        let p = params(1.0, KernelKind::Gaussian { gamma: 0.5 });
        let reference = {
            let x = AnyMatrix::from_triplets(Format::Csr, &t);
            train_with_stats(&x, &y, &p).unwrap()
        };
        for fmt in Format::ALL {
            let x = AnyMatrix::from_triplets(fmt, &t);
            let (model, stats) = train_with_stats(&x, &y, &p).unwrap();
            prop_assert_eq!(stats.iterations, reference.1.iterations, "{}", fmt);
            prop_assert!((model.bias() - reference.0.bias()).abs() < 1e-9, "{}", fmt);
            for i in 0..t.rows() {
                let r = t.row_sparse(i);
                prop_assert_eq!(
                    model.predict_label(&r),
                    reference.0.predict_label(&r),
                    "{} row {}", fmt, i
                );
            }
        }
    }

    /// With a Gaussian kernel and large C, SMO must separate any consistent
    /// training set (distinct points, one label each): training accuracy 1.
    #[test]
    fn gaussian_interpolates_distinct_points(n in 4usize..12, seed in 0u64..500) {
        // Distinct 1-D points with alternating labels.
        let mut t = TripletMatrix::new(n, 1);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            t.push(i, 0, i as f64 + (seed % 7) as f64 * 0.1);
            y.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let t = t.compact();
        let x = AnyMatrix::from_triplets(Format::Den, &t);
        let p = SmoParams {
            c: 1e4,
            kernel: KernelKind::Gaussian { gamma: 4.0 },
            max_iterations: 50_000,
            ..Default::default()
        };
        let (model, stats) = train_with_stats(&x, &y, &p).unwrap();
        prop_assert!(stats.converged);
        for i in 0..n {
            prop_assert_eq!(model.predict_label(&t.row_sparse(i)), y[i], "point {}", i);
        }
    }

    /// The iteration count and SV count never exceed their structural
    /// bounds, and the reported gap is consistent with convergence.
    #[test]
    fn stats_are_internally_consistent((t, y) in arb_problem()) {
        let p = params(1.0, KernelKind::Linear);
        let x = AnyMatrix::from_triplets(Format::Coo, &t);
        let (model, stats) = train_with_stats(&x, &y, &p).unwrap();
        prop_assert!(stats.iterations <= p.max_iterations);
        prop_assert_eq!(stats.n_support_vectors, model.n_support_vectors());
        prop_assert!(stats.n_support_vectors <= t.rows());
        if stats.converged && stats.iterations < p.max_iterations {
            prop_assert!(stats.final_gap <= 2.0 * p.tolerance + 1e-12,
                "converged with gap {}", stats.final_gap);
        }
    }

    /// Shrinking cannot change the decision function: any random problem
    /// trained with and without shrinking predicts identically.
    #[test]
    fn shrinking_is_result_invariant((t, y) in arb_problem()) {
        let x = AnyMatrix::from_triplets(Format::Csr, &t);
        let plain = params(2.0, KernelKind::Gaussian { gamma: 0.5 });
        let shrunk = SmoParams { shrinking: true, ..plain };
        let (m1, s1) = train_with_stats(&x, &y, &plain).unwrap();
        let (m2, s2) = train_with_stats(&x, &y, &shrunk).unwrap();
        prop_assert!(s1.converged && s2.converged);
        for i in 0..t.rows() {
            let r = t.row_sparse(i);
            prop_assert_eq!(m1.predict_label(&r), m2.predict_label(&r), "row {}", i);
        }
    }

    /// Cache on vs cache off cannot change the result.
    #[test]
    fn cache_is_transparent((t, y) in arb_problem()) {
        let x = AnyMatrix::from_triplets(Format::Csr, &t);
        let with = params(1.0, KernelKind::Gaussian { gamma: 1.0 });
        let without = SmoParams { cache_bytes: 0, ..with };
        let (m1, s1) = train_with_stats(&x, &y, &with).unwrap();
        let (m2, s2) = train_with_stats(&x, &y, &without).unwrap();
        prop_assert_eq!(s1.iterations, s2.iterations);
        prop_assert!((m1.bias() - m2.bias()).abs() < 1e-12);
        // A zero budget still keeps the two working rows resident (SMO
        // needs high and low simultaneously), so the small cache can hit;
        // it can never hit more than the big one.
        prop_assert!(s2.cache_hits <= s1.cache_hits);
    }
}
