#![warn(missing_docs)]
// Mirrors dls-svm's solver conventions (paper-shaped conditions, parallel
// array loops).
#![allow(clippy::nonminimal_bool, clippy::needless_range_loop)]

//! # dls-baseline
//!
//! A LIBSVM-style reference SMO implementation: the "parallel LIBSVM
//! (state-of-the-art SVM software on CPUs using CSR format)" baseline of
//! the paper's Figure 7.
//!
//! Deliberately faithful to how LIBSVM evaluates kernels rather than to how
//! an HPC-tuned code would:
//!
//! * the data layout is **fixed CSR** regardless of the dataset — the exact
//!   non-adaptivity the paper argues against;
//! * kernel values are computed one element at a time with a sorted
//!   **merge-join** of two sparse rows (LIBSVM's `Kernel::dot`), instead of
//!   the scatter-gather SMSV of `dls-sparse`;
//! * each kernel row allocates fresh storage — no workspace reuse and no
//!   kernel-row cache.
//!
//! The arithmetic is identical to `dls_svm::train`, so accuracy matches;
//! only the constant factors differ. That makes speedups of the adaptive
//! system over this baseline attributable purely to layout and kernel
//! engineering, as in the paper.

use dls_sparse::{CsrMatrix, MatrixFormat, Scalar, SparseVec, TripletMatrix};
use dls_svm::{KernelKind, SvmError, SvmModel};

/// Hyperparameters of the reference solver (mirrors `SmoParams` minus the
/// engineering knobs the reference deliberately lacks).
#[derive(Debug, Clone, Copy)]
pub struct LibsvmLikeParams {
    /// Regularization constant `C`.
    pub c: Scalar,
    /// Kernel function.
    pub kernel: KernelKind,
    /// Convergence tolerance τ.
    pub tolerance: Scalar,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for LibsvmLikeParams {
    fn default() -> Self {
        Self { c: 1.0, kernel: KernelKind::default(), tolerance: 1e-3, max_iterations: 100_000 }
    }
}

/// Convergence info from a reference run.
#[derive(Debug, Clone, Copy)]
pub struct LibsvmLikeStats {
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the duality gap closed.
    pub converged: bool,
}

/// Trains with the reference solver. The input is triplets because the
/// baseline *always* re-encodes to CSR — its defining limitation.
pub fn train_libsvm_like(
    t: &TripletMatrix,
    y: &[Scalar],
    params: &LibsvmLikeParams,
) -> Result<(SvmModel, LibsvmLikeStats), SvmError> {
    let x = CsrMatrix::from_triplets(t);
    let n = x.rows();
    if y.len() != n {
        return Err(SvmError::LabelLengthMismatch { rows: n, labels: y.len() });
    }
    for (i, &yi) in y.iter().enumerate() {
        if yi != 1.0 && yi != -1.0 {
            return Err(SvmError::NonBinaryLabel { index: i, value: yi });
        }
    }
    if !y.contains(&1.0) || !y.contains(&-1.0) {
        return Err(SvmError::SingleClass);
    }

    let c = params.c;
    let eps = 1e-12;
    // LIBSVM recomputes x·x lazily; we keep its one concession to caching.
    let norms: Vec<Scalar> = (0..n).map(|i| x.row_sparse(i).norm_sq()).collect();

    let mut alpha = vec![0.0; n];
    let mut f: Vec<Scalar> = y.iter().map(|&yi| -yi).collect();

    // One kernel row, LIBSVM-style: extract both rows and merge-join per
    // element. Fresh allocations every call.
    let kernel_row = |i: usize| -> Vec<Scalar> {
        let xi = x.row_sparse(i);
        (0..n)
            .map(|j| {
                let dot = x.row_sparse(j).dot(&xi);
                params.kernel.apply(dot, norms[j], norms[i])
            })
            .collect()
    };

    let mut iterations = 0;
    let mut converged = false;
    loop {
        let (mut high, mut low) = (usize::MAX, usize::MAX);
        let (mut b_high, mut b_low) = (Scalar::INFINITY, Scalar::NEG_INFINITY);
        for i in 0..n {
            let ai = alpha[i];
            let free = ai > eps && ai < c - eps;
            let at_zero = ai <= eps;
            let in_high = free || (y[i] > 0.0 && at_zero) || (y[i] < 0.0 && !at_zero && !free);
            let in_low = free || (y[i] > 0.0 && !at_zero && !free) || (y[i] < 0.0 && at_zero);
            if in_high && f[i] < b_high {
                b_high = f[i];
                high = i;
            }
            if in_low && f[i] > b_low {
                b_low = f[i];
                low = i;
            }
        }
        if high == usize::MAX || low == usize::MAX || b_low - b_high <= 2.0 * params.tolerance {
            converged = true;
            break;
        }
        if iterations >= params.max_iterations {
            break;
        }
        iterations += 1;

        let k_high = kernel_row(high);
        let k_low = kernel_row(low);
        let (yh, yl) = (y[high], y[low]);
        let s = yh * yl;
        let eta = (k_high[high] + k_low[low] - 2.0 * k_high[low]).max(1e-12);
        let (l_bound, h_bound) = if s < 0.0 {
            ((alpha[low] - alpha[high]).max(0.0), (c + alpha[low] - alpha[high]).min(c))
        } else {
            ((alpha[low] + alpha[high] - c).max(0.0), (alpha[low] + alpha[high]).min(c))
        };
        let alpha_low_new = (alpha[low] + yl * (f[high] - f[low]) / eta).clamp(l_bound, h_bound);
        let delta_low = alpha_low_new - alpha[low];
        if delta_low.abs() < 1e-14 {
            break;
        }
        let delta_high = -s * delta_low;
        alpha[low] = alpha_low_new;
        alpha[high] = (alpha[high] + delta_high).clamp(0.0, c);
        for i in 0..n {
            f[i] += delta_high * yh * k_high[i] + delta_low * yl * k_low[i];
        }
    }

    let (mut b_high, mut b_low) = (Scalar::INFINITY, Scalar::NEG_INFINITY);
    for i in 0..n {
        let ai = alpha[i];
        let free = ai > eps && ai < c - eps;
        let at_zero = ai <= eps;
        let in_high = free || (y[i] > 0.0 && at_zero) || (y[i] < 0.0 && !at_zero && !free);
        let in_low = free || (y[i] > 0.0 && !at_zero && !free) || (y[i] < 0.0 && at_zero);
        if in_high {
            b_high = b_high.min(f[i]);
        }
        if in_low {
            b_low = b_low.max(f[i]);
        }
    }
    let bias = -(b_high + b_low) / 2.0;

    let mut svs: Vec<SparseVec> = Vec::new();
    let mut coefs = Vec::new();
    for i in 0..n {
        if alpha[i] > eps {
            svs.push(x.row_sparse(i));
            coefs.push(alpha[i] * y[i]);
        }
    }
    Ok((SvmModel::new(params.kernel, svs, coefs, bias), LibsvmLikeStats { iterations, converged }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_data::labels::linear_teacher_labels;
    use dls_data::{generate, DatasetSpec};
    use dls_sparse::CsrMatrix;
    use dls_svm::{train_with_stats, SmoParams};

    fn small_problem() -> (TripletMatrix, Vec<Scalar>) {
        let spec = DatasetSpec::by_name("adult").unwrap().scaled(30);
        let t = generate(&spec, 9);
        let y = linear_teacher_labels(&t, 0.0, 9);
        (t, y)
    }

    #[test]
    fn baseline_and_tuned_solver_agree() {
        let (t, y) = small_problem();
        let base_params = LibsvmLikeParams { kernel: KernelKind::Linear, ..Default::default() };
        let (base_model, base_stats) = train_libsvm_like(&t, &y, &base_params).unwrap();
        assert!(base_stats.converged);

        let x = CsrMatrix::from_triplets(&t);
        let tuned_params = SmoParams { kernel: KernelKind::Linear, ..Default::default() };
        let (tuned_model, tuned_stats) = train_with_stats(&x, &y, &tuned_params).unwrap();
        assert!(tuned_stats.converged);

        // Same algorithm → identical iteration counts and bias.
        assert_eq!(base_stats.iterations, tuned_stats.iterations);
        assert!((base_model.bias() - tuned_model.bias()).abs() < 1e-9);

        // Identical predictions on all training rows.
        for i in 0..t.rows() {
            let r = t.row_sparse(i);
            assert_eq!(base_model.predict_label(&r), tuned_model.predict_label(&r));
        }
    }

    #[test]
    fn baseline_classifies_teacher_labels() {
        let (t, y) = small_problem();
        let params = LibsvmLikeParams { kernel: KernelKind::Linear, ..Default::default() };
        let (model, _) = train_libsvm_like(&t, &y, &params).unwrap();
        let preds: Vec<Scalar> =
            (0..t.rows()).map(|i| model.predict_label(&t.row_sparse(i))).collect();
        let acc = dls_svm::accuracy(&preds, &y);
        assert!(acc > 0.8, "baseline accuracy {acc}");
    }

    #[test]
    fn baseline_validates_inputs() {
        let (t, _) = small_problem();
        let params = LibsvmLikeParams::default();
        assert!(matches!(
            train_libsvm_like(&t, &[1.0], &params),
            Err(SvmError::LabelLengthMismatch { .. })
        ));
        let bad = vec![2.0; t.rows()];
        assert!(matches!(
            train_libsvm_like(&t, &bad, &params),
            Err(SvmError::NonBinaryLabel { .. })
        ));
        let ones = vec![1.0; t.rows()];
        assert!(matches!(train_libsvm_like(&t, &ones, &params), Err(SvmError::SingleClass)));
    }
}
