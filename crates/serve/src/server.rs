//! The TCP front end: acceptor, per-connection handlers, graceful drain.
//!
//! One thread accepts connections (non-blocking, so it can observe the
//! shutdown flag); each connection gets a handler thread that reads
//! frames, dispatches to the [`Executor`], and writes the reply. The
//! protocol is strictly request/response per connection, so a handler has
//! at most one job in flight — concurrency comes from concurrent
//! connections, which is exactly what feeds the batching executor.
//!
//! Shutdown (a `Shutdown` frame, or [`ServerHandle::shutdown`], which the
//! CLI wires to its exit path as the stand-in for SIGTERM/ctrl-c in this
//! libc-free workspace) flips one flag: the acceptor refuses new
//! connections, queued work drains, in-flight connections answer
//! `ShuttingDown` to further requests, and `ServerHandle::join` returns
//! once the workers are parked.

use crate::executor::{parse_strategy, Executor, ExecutorConfig};
use crate::proto::{
    decode_request_versioned, encode_response_version, entries_to_triplets, read_frame,
    write_frame, Request, Response, PROTO_VERSION,
};
use crate::registry::ModelRegistry;
use crate::stats::ServeStats;
use dls_core::LayoutScheduler;
use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Executor tuning.
    pub executor: ExecutorConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { addr: "127.0.0.1:0".to_string(), executor: ExecutorConfig::default() }
    }
}

/// A running server instance.
pub struct ServerHandle {
    executor: Arc<Executor>,
    shutdown: Arc<AtomicBool>,
    local_addr: std::net::SocketAddr,
    acceptor: Mutex<Option<std::thread::JoinHandle<()>>>,
    active_connections: Arc<AtomicU64>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The executor, for stats and drain control.
    pub fn executor(&self) -> &Arc<Executor> {
        &self.executor
    }

    /// Live service stats.
    pub fn stats(&self) -> &Arc<ServeStats> {
        self.executor.stats()
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests a graceful drain and blocks until the acceptor and worker
    /// pool have exited. Idempotent; also triggered by a `Shutdown` frame.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.lock().expect("handle poisoned").take() {
            let _ = acceptor.join();
        }
        // Give in-flight connection handlers a bounded window to finish
        // writing their final responses before the queues close under them.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.executor.shutdown();
    }

    /// [`ServerHandle::shutdown`], waiting for a `Shutdown` frame to have
    /// requested it first — what `dls serve` blocks on.
    pub fn join(&self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.shutdown();
    }
}

/// Starts a server: binds, spawns the executor's worker pool and the
/// acceptor thread, returns immediately.
pub fn start(
    registry: ModelRegistry,
    scheduler: LayoutScheduler,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let registry = Arc::new(registry);
    let stats = Arc::new(ServeStats::new());
    let executor = Executor::start(registry, Arc::new(scheduler), stats, config.executor.clone());
    let shutdown = Arc::new(AtomicBool::new(false));
    let active_connections = Arc::new(AtomicU64::new(0));

    let acceptor = {
        let executor = Arc::clone(&executor);
        let shutdown = Arc::clone(&shutdown);
        let active = Arc::clone(&active_connections);
        std::thread::Builder::new()
            .name("dls-serve-acceptor".to_string())
            .spawn(move || loop {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let executor = Arc::clone(&executor);
                        let shutdown = Arc::clone(&shutdown);
                        let active = Arc::clone(&active);
                        active.fetch_add(1, Ordering::SeqCst);
                        let _ = std::thread::Builder::new()
                            .name("dls-serve-conn".to_string())
                            .spawn(move || {
                                let _ = handle_connection(stream, &executor, &shutdown);
                                active.fetch_sub(1, Ordering::SeqCst);
                            });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            })
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        executor,
        shutdown,
        local_addr,
        acceptor: Mutex::new(Some(acceptor)),
        active_connections,
    })
}

/// Serves one connection until EOF, an I/O error, or shutdown.
fn handle_connection(
    stream: TcpStream,
    executor: &Executor,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        // Decode tolerantly across protocol versions and echo the
        // response at the version the request arrived in, so v1 clients
        // interoperate with a v2 server frame-for-frame.
        let (version, response) = match decode_request_versioned(&payload) {
            Err(e) => (PROTO_VERSION, Response::Error(format!("protocol error: {e}"))),
            Ok((version, _)) if shutdown.load(Ordering::SeqCst) => {
                (version, Response::ShuttingDown)
            }
            Ok((version, request)) => (version, dispatch(request, executor, shutdown)),
        };
        write_frame(&mut writer, &encode_response_version(&response, version))?;
    }
    Ok(())
}

fn dispatch(request: Request, executor: &Executor, shutdown: &AtomicBool) -> Response {
    match request {
        Request::Predict { model, deadline_ms, class, slo_us, vectors } => {
            match executor.submit_predict(&model, vectors, class, slo_us, deadline_ms) {
                Ok(rx) => await_reply(rx),
                Err(refusal) => refusal,
            }
        }
        Request::Schedule { strategy, rows, cols, entries } => {
            let strategy = match parse_strategy(&strategy) {
                Ok(s) => s,
                Err(msg) => {
                    executor.stats().schedule.record_error();
                    return Response::Error(msg);
                }
            };
            let triplets = match entries_to_triplets(rows, cols, &entries) {
                Ok(t) => t,
                Err(e) => {
                    executor.stats().schedule.record_error();
                    return Response::Error(format!("bad matrix: {e}"));
                }
            };
            match executor.submit_schedule(triplets, strategy, 0) {
                Ok(rx) => await_reply(rx),
                Err(refusal) => refusal,
            }
        }
        Request::Stats => {
            let start = Instant::now();
            let json =
                executor.stats().snapshot_json(executor.registry(), &executor.queue_depths());
            executor.stats().stats.record_ok(start.elapsed());
            Response::Stats(json)
        }
        Request::Shutdown => {
            // Ack first; ServerHandle::join (or the smoke harness) observes
            // the flag and performs the drain.
            shutdown.store(true, Ordering::SeqCst);
            Response::ShuttingDown
        }
    }
}

/// Waits for the worker's reply. The executor always answers accepted
/// jobs (drain included), so a missing reply means a worker died — answer
/// a clean error rather than wedging the connection.
fn await_reply(rx: std::sync::mpsc::Receiver<Response>) -> Response {
    match rx.recv_timeout(Duration::from_secs(60)) {
        Ok(resp) => resp,
        Err(_) => Response::Error("worker dropped the request".to_string()),
    }
}
