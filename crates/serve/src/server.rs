//! The TCP front ends: acceptor, connection handling, graceful drain.
//!
//! Two selectable front ends share this module's dispatch and hardening
//! logic ([`ServerConfig::frontend`]):
//!
//! * **`threads`** — one thread accepts connections (non-blocking, so it
//!   can observe the shutdown flag); each connection gets a handler
//!   thread that reads frames, dispatches to the [`Executor`], and
//!   writes the reply. A handler serves strictly in order, one request
//!   at a time — concurrency comes from concurrent connections.
//! * **`reactor`** — a single event-loop thread drives every connection
//!   through epoll readiness (see [`crate::reactor`]); protocol-v3
//!   clients can pipeline many requests per connection and receive
//!   responses out of order by `frame_id`.
//!
//! Shutdown (a `Shutdown` frame, or [`ServerHandle::shutdown`], which the
//! CLI wires to its exit path as the stand-in for SIGTERM/ctrl-c in this
//! libc-free workspace) flips one flag: the acceptor refuses new
//! connections, queued work drains, in-flight connections answer
//! `ShuttingDown` to further requests, and `ServerHandle::join` returns
//! once the workers are parked.
//!
//! **Hardening.** Sockets run with a short tick timeout so every handler
//! distinguishes two very different silences: *idle at a frame boundary*
//! (a healthy keep-alive — tolerated up to [`ServerConfig::idle_timeout`],
//! then reaped) and *stalled mid-frame* (a dribbling or wedged peer —
//! tolerated up to [`ServerConfig::read_timeout`], then the connection is
//! closed, because a half-read frame leaves the stream unframeable).
//! Oversized length prefixes are refused before allocation with a typed
//! error, writes carry their own timeout, and every outcome lands in the
//! `faults` counters of the stats JSON.

use crate::executor::{parse_strategy, Executor, ExecutorConfig};
use crate::fault::{FaultSite, FaultStream};
use crate::proto::{
    decode_request_framed, encode_response_framed, entries_to_triplets, proto_error_of,
    write_frame, ProtoError, Request, Response, MAX_FRAME_LEN, PROTO_VERSION,
};
use crate::registry::ModelRegistry;
use crate::stats::{FaultCounters, ServeStats};
use dls_core::LayoutScheduler;
use std::io::{BufReader, BufWriter, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which I/O front end serves connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frontend {
    /// Thread-per-connection: simple, serial per connection, one stack
    /// per open socket.
    Threads,
    /// Readiness-driven event loop: one thread for all connections,
    /// pipelined protocol v3.
    Reactor,
}

impl std::str::FromStr for Frontend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" => Ok(Frontend::Threads),
            "reactor" => Ok(Frontend::Reactor),
            other => Err(format!("unknown frontend '{other}' (expected threads|reactor)")),
        }
    }
}

impl std::fmt::Display for Frontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Frontend::Threads => "threads",
            Frontend::Reactor => "reactor",
        })
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Executor tuning.
    pub executor: ExecutorConfig,
    /// How long a frame may stall *mid-read* before the connection is
    /// closed (the stream cannot be re-synchronised past a half-frame).
    pub read_timeout: Duration,
    /// How long a response write may take before the connection is closed.
    pub write_timeout: Duration,
    /// How long a connection may sit idle *between* frames before it is
    /// reaped. Reaping at the boundary is safe: no state is in flight.
    pub idle_timeout: Duration,
    /// Which I/O front end to run.
    pub frontend: Frontend,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            executor: ExecutorConfig::default(),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            frontend: Frontend::Threads,
        }
    }
}

/// A running server instance.
pub struct ServerHandle {
    executor: Arc<Executor>,
    shutdown: Arc<AtomicBool>,
    local_addr: std::net::SocketAddr,
    acceptor: Mutex<Option<std::thread::JoinHandle<()>>>,
    active_connections: Arc<AtomicU64>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The executor, for stats and drain control.
    pub fn executor(&self) -> &Arc<Executor> {
        &self.executor
    }

    /// Live service stats.
    pub fn stats(&self) -> &Arc<ServeStats> {
        self.executor.stats()
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests a graceful drain and blocks until the acceptor and worker
    /// pool have exited. Idempotent; also triggered by a `Shutdown` frame.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.lock().expect("handle poisoned").take() {
            let _ = acceptor.join();
        }
        // Give in-flight connection handlers a bounded window to finish
        // writing their final responses before the queues close under them.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.executor.shutdown();
    }

    /// [`ServerHandle::shutdown`], waiting for a `Shutdown` frame to have
    /// requested it first — what `dls serve` blocks on.
    pub fn join(&self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.shutdown();
    }
}

/// Starts a server: binds, spawns the executor's worker pool and the
/// acceptor thread, returns immediately.
pub fn start(
    registry: ModelRegistry,
    scheduler: LayoutScheduler,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let registry = Arc::new(registry);
    let stats = Arc::new(ServeStats::new());
    let executor = Executor::start(registry, Arc::new(scheduler), stats, config.executor.clone());
    let shutdown = Arc::new(AtomicBool::new(false));
    let active_connections = Arc::new(AtomicU64::new(0));

    let limits = ConnLimits {
        read_timeout: config.read_timeout,
        write_timeout: config.write_timeout,
        idle_timeout: config.idle_timeout,
    };
    if config.frontend == Frontend::Reactor {
        let acceptor = {
            let executor = Arc::clone(&executor);
            let shutdown = Arc::clone(&shutdown);
            let active = Arc::clone(&active_connections);
            std::thread::Builder::new()
                .name("dls-serve-reactor".to_string())
                .spawn(move || {
                    let _ =
                        crate::reactor::serve_reactor(listener, executor, shutdown, active, limits);
                })
                .expect("spawn reactor")
        };
        return Ok(ServerHandle {
            executor,
            shutdown,
            local_addr,
            acceptor: Mutex::new(Some(acceptor)),
            active_connections,
        });
    }

    let acceptor = {
        let executor = Arc::clone(&executor);
        let shutdown = Arc::clone(&shutdown);
        let active = Arc::clone(&active_connections);
        std::thread::Builder::new()
            .name("dls-serve-acceptor".to_string())
            .spawn(move || loop {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let executor = Arc::clone(&executor);
                        let shutdown = Arc::clone(&shutdown);
                        let active = Arc::clone(&active);
                        let limits = limits.clone();
                        active.fetch_add(1, Ordering::SeqCst);
                        let _ = std::thread::Builder::new()
                            .name("dls-serve-conn".to_string())
                            .spawn(move || {
                                let _ = handle_connection(stream, &executor, &shutdown, &limits);
                                active.fetch_sub(1, Ordering::SeqCst);
                            });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            })
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        executor,
        shutdown,
        local_addr,
        acceptor: Mutex::new(Some(acceptor)),
        active_connections,
    })
}

/// Per-connection time budgets, shared by both front ends.
#[derive(Debug, Clone)]
pub(crate) struct ConnLimits {
    pub(crate) read_timeout: Duration,
    pub(crate) write_timeout: Duration,
    pub(crate) idle_timeout: Duration,
}

impl ConnLimits {
    /// The socket tick: short enough to observe the tightest budget a few
    /// times over.
    pub(crate) fn tick(&self) -> Duration {
        Duration::from_millis(50)
            .min(self.read_timeout / 4)
            .min(self.idle_timeout / 4)
            .max(Duration::from_millis(1))
    }
}

/// Why [`read_frame_timed`] stopped without a frame.
enum FrameEnd {
    /// Clean EOF at a frame boundary.
    Eof,
    /// The connection sat idle at a frame boundary past the idle budget.
    IdleReaped,
}

/// Reads whole bytes into `buf[*filled..]`, tolerating the socket tick:
/// returns `Ok(true)` when full, `Ok(false)` on a clean EOF with nothing
/// read, and `Err(TimedOut)` when `budget` elapses without completion
/// (measured from `started`, not from the last byte — a dribbling peer
/// cannot hold a handler hostage one byte per tick).
fn read_exact_timed(
    r: &mut impl Read,
    buf: &mut [u8],
    filled: &mut usize,
    started: Instant,
    budget: Duration,
) -> std::io::Result<bool> {
    while *filled < buf.len() {
        match r.read(&mut buf[*filled..]) {
            Ok(0) => {
                if *filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => *filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if started.elapsed() >= budget {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "frame stalled past the read timeout",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one frame under the connection's time budgets, counting every
/// failure mode in the stats `faults` section. `Err(Frame(_))` carries a
/// whole frame; the other arms are documented on [`FrameEnd`].
fn read_frame_timed(
    r: &mut impl Read,
    limits: &ConnLimits,
    stats: &ServeStats,
) -> std::io::Result<Result<Vec<u8>, FrameEnd>> {
    // Phase 1: the length prefix. Waiting for its *first* byte is healthy
    // idling (bounded by idle_timeout); once any byte arrives the frame
    // has started and the tighter read_timeout applies.
    let mut len_bytes = [0u8; 4];
    let mut got = 0;
    let idle_started = Instant::now();
    match read_exact_timed(r, &mut len_bytes, &mut got, idle_started, limits.idle_timeout) {
        Ok(true) => {}
        Ok(false) => return Ok(Err(FrameEnd::Eof)),
        Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {
            if got == 0 {
                FaultCounters::bump(&stats.faults.conn_idle_reaped);
                return Ok(Err(FrameEnd::IdleReaped));
            }
            FaultCounters::bump(&stats.faults.conn_read_timeouts);
            return Err(e);
        }
        Err(e) => return Err(classify_read_error(e, stats)),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        FaultCounters::bump(&stats.faults.frames_too_large);
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            ProtoError::FrameTooLarge(len),
        ));
    }
    // Phase 2: the payload, under the mid-frame stall budget.
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    let frame_started = Instant::now();
    match read_exact_timed(r, &mut payload, &mut filled, frame_started, limits.read_timeout) {
        Ok(_) if filled == len => Ok(Ok(payload)),
        Ok(_) => Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-frame",
        )),
        Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {
            FaultCounters::bump(&stats.faults.conn_read_timeouts);
            Err(e)
        }
        Err(e) => Err(classify_read_error(e, stats)),
    }
}

/// Counts peer-initiated connection failures before passing them on.
pub(crate) fn classify_read_error(e: std::io::Error, stats: &ServeStats) -> std::io::Error {
    match e.kind() {
        std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::ConnectionAborted
        | std::io::ErrorKind::BrokenPipe
        | std::io::ErrorKind::UnexpectedEof => {
            FaultCounters::bump(&stats.faults.conn_resets);
        }
        _ => {}
    }
    e
}

/// Serves one connection until EOF, an I/O error, a timeout, or reaping.
fn handle_connection(
    stream: TcpStream,
    executor: &Executor,
    shutdown: &AtomicBool,
    limits: &ConnLimits,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(limits.tick())).ok();
    stream.set_write_timeout(Some(limits.write_timeout)).ok();
    let fault = executor.fault().clone();
    let stats = Arc::clone(executor.stats());
    let mut reader =
        BufReader::new(FaultStream::new(stream.try_clone()?, fault.clone(), FaultSite::ConnRead));
    let mut writer = BufWriter::new(FaultStream::new(stream, fault, FaultSite::ConnWrite));
    loop {
        let payload = match read_frame_timed(&mut reader, limits, &stats) {
            Ok(Ok(payload)) => payload,
            Ok(Err(_)) => return Ok(()), // clean EOF or idle-reaped
            Err(e) => {
                // A lying length prefix gets a typed refusal before the
                // connection closes; after a half-read frame the stream
                // cannot be re-synchronised, so everything else just
                // closes.
                if proto_error_of(&e).is_some() {
                    let resp = Response::Error(format!("protocol error: {e}"));
                    let _ =
                        write_frame(&mut writer, &encode_response_framed(&resp, PROTO_VERSION, 0));
                }
                return Err(e);
            }
        };
        // Decode tolerantly across protocol versions and echo the
        // response at the version (and, for v3, the frame id) the request
        // arrived in, so older clients interoperate frame-for-frame. This
        // front end answers strictly in order, which is a valid — if
        // serial — v3 pipelining schedule.
        let (version, frame_id, response) = match decode_request_framed(&payload) {
            Err(e) => {
                FaultCounters::bump(&stats.faults.protocol_errors);
                (PROTO_VERSION, 0, Response::Error(format!("protocol error: {e}")))
            }
            Ok((version, frame_id, _)) if shutdown.load(Ordering::SeqCst) => {
                (version, frame_id, Response::ShuttingDown)
            }
            Ok((version, frame_id, request)) => {
                (version, frame_id, dispatch(request, executor, shutdown))
            }
        };
        if let Err(e) =
            write_frame(&mut writer, &encode_response_framed(&response, version, frame_id))
        {
            match e.kind() {
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                    FaultCounters::bump(&stats.faults.conn_write_timeouts);
                }
                _ => FaultCounters::bump(&stats.faults.conn_resets),
            }
            return Err(e);
        }
    }
}

/// The outcome of submitting a request: answered inline, or parked on the
/// executor with a receiver for the eventual reply. The threads front end
/// awaits `Pending` immediately; the reactor parks it and keeps serving.
pub(crate) enum Dispatched {
    Ready(Response),
    Pending(std::sync::mpsc::Receiver<Response>),
}

/// Routes one request without blocking on the executor.
pub(crate) fn dispatch_async(
    request: Request,
    executor: &Executor,
    shutdown: &AtomicBool,
) -> Dispatched {
    match request {
        Request::Predict { model, deadline_ms, class, slo_us, vectors } => {
            match executor.submit_predict(&model, vectors, class, slo_us, deadline_ms) {
                Ok(rx) => Dispatched::Pending(rx),
                Err(refusal) => Dispatched::Ready(refusal),
            }
        }
        Request::Schedule { strategy, rows, cols, entries } => {
            let strategy = match parse_strategy(&strategy) {
                Ok(s) => s,
                Err(msg) => {
                    executor.stats().schedule.record_error();
                    return Dispatched::Ready(Response::Error(msg));
                }
            };
            let triplets = match entries_to_triplets(rows, cols, &entries) {
                Ok(t) => t,
                Err(e) => {
                    executor.stats().schedule.record_error();
                    return Dispatched::Ready(Response::Error(format!("bad matrix: {e}")));
                }
            };
            match executor.submit_schedule(triplets, strategy, 0) {
                Ok(rx) => Dispatched::Pending(rx),
                Err(refusal) => Dispatched::Ready(refusal),
            }
        }
        Request::Stats => {
            let start = Instant::now();
            if let Some(hub) = executor.feedback() {
                hub.sync_stats(executor.stats());
            }
            let json =
                executor.stats().snapshot_json(executor.registry(), &executor.queue_depths());
            executor.stats().stats.record_ok(start.elapsed());
            Dispatched::Ready(Response::Stats(json))
        }
        Request::Health => Dispatched::Ready(Response::Health(executor.health_json())),
        Request::Shutdown => {
            // Ack first; ServerHandle::join (or the smoke harness) observes
            // the flag and performs the drain.
            shutdown.store(true, Ordering::SeqCst);
            Dispatched::Ready(Response::ShuttingDown)
        }
    }
}

fn dispatch(request: Request, executor: &Executor, shutdown: &AtomicBool) -> Response {
    match dispatch_async(request, executor, shutdown) {
        Dispatched::Ready(resp) => resp,
        Dispatched::Pending(rx) => await_reply(rx),
    }
}

/// Waits for the worker's reply. The executor always answers accepted
/// jobs (drain included), so a missing reply means a worker died — answer
/// a clean error rather than wedging the connection.
fn await_reply(rx: std::sync::mpsc::Receiver<Response>) -> Response {
    match rx.recv_timeout(Duration::from_secs(60)) {
        Ok(resp) => resp,
        Err(_) => Response::Error("worker dropped the request".to_string()),
    }
}
