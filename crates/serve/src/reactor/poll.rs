//! A minimal readiness API over raw `epoll` syscall bindings.
//!
//! The workspace vendors no I/O crates, so this module binds the four
//! libc symbols the reactor needs (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `eventfd`) directly with `extern "C"` — std already
//! links libc on every supported target, so this adds no dependency. The
//! surface is deliberately tiny: level-triggered registration keyed by a
//! caller-chosen `u64` token, a blocking `wait` with timeout, and a
//! [`WakeFd`] (an `eventfd`) other threads can ping to interrupt a wait.
//!
//! Level-triggered (the default) rather than edge-triggered: the event
//! loop may legitimately stop reading a ready socket (write backpressure,
//! a pre-v3 request in flight) and must be re-notified on the next wait
//! without re-arming gymnastics.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel ABI
/// packs it there so 32- and 64-bit layouts agree); natural alignment
/// elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

/// One readiness notification: the registered token plus decoded flags.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Bytes (or an accept) can be read without blocking.
    pub readable: bool,
    /// The socket's send buffer has room again.
    pub writable: bool,
    /// Error or hangup: the peer is gone or the fd is broken; the
    /// connection should be torn down after a final read attempt.
    pub hangup: bool,
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Poll {
    epfd: RawFd,
}

impl Poll {
    /// Creates an epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poll> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poll { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest, data: token };
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` for the given interest set
    /// (`EPOLLIN` / `EPOLLOUT`; `EPOLLERR`/`EPOLLHUP` are always
    /// reported).
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest | EPOLLRDHUP, token)
    }

    /// Replaces an existing registration's interest set.
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest | EPOLLRDHUP, token)
    }

    /// Removes a registration. Safe to call on an fd the kernel already
    /// dropped (closing an fd deregisters it implicitly).
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` blocks indefinitely), then decodes the kernel's
    /// events into `out`. Retries transparently on `EINTR`.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        out.clear();
        const MAX_EVENTS: usize = 256;
        let mut raw = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let timeout_ms = match timeout {
            // Round up so a 100 µs wait does not busy-loop at 0 ms.
            Some(d) => d.as_millis().min(i32::MAX as u128).max(1) as i32,
            None => -1,
        };
        let n = loop {
            let rc =
                unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms) };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &raw[..n] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

/// A cross-thread wakeup primitive: an `eventfd` registered with the
/// [`Poll`], pinged by the executor's completion hook so finished replies
/// are written back the moment they exist instead of on the next tick.
#[derive(Debug)]
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    /// Creates a nonblocking eventfd.
    pub fn new() -> io::Result<WakeFd> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakeFd { fd })
    }

    /// The fd to register for `EPOLLIN`.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the fd readable, waking any waiter. Safe from any thread;
    /// saturation (`EAGAIN` at the counter cap) still leaves it readable,
    /// so the error is ignored.
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        unsafe { write(self.fd, one.as_ptr(), one.len()) };
    }

    /// Consumes all pending wakeups so the fd stops polling readable.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.fd, buf.as_mut_ptr(), buf.len()) };
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn listener_readiness_fires_on_connect() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        poll.add(listener.as_raw_fd(), 7, EPOLLIN).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a short wait returns empty.
        poll.wait(&mut events, Some(Duration::from_millis(5))).unwrap();
        assert!(events.is_empty());

        let _client = TcpStream::connect(addr).unwrap();
        poll.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable), "{events:?}");
    }

    #[test]
    fn stream_read_and_write_interest_are_decoded() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        poll.add(server.as_raw_fd(), 1, EPOLLIN | EPOLLOUT).unwrap();

        let mut events = Vec::new();
        poll.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        // A fresh socket is writable but has nothing to read.
        let ev = events.iter().find(|e| e.token == 1).expect("event for the accepted socket");
        assert!(ev.writable && !ev.readable, "{ev:?}");

        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        // Narrow interest to reads only and observe the payload arriving.
        poll.modify(server.as_raw_fd(), 1, EPOLLIN).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poll.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
            if events.iter().any(|e| e.token == 1 && e.readable) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "read readiness never fired");
        }
        poll.remove(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn hangup_is_reported_when_the_peer_disconnects() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        poll.add(server.as_raw_fd(), 3, EPOLLIN).unwrap();
        drop(client);
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poll.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
            // An orderly shutdown may surface as EPOLLRDHUP (readable)
            // or EPOLLHUP depending on timing; either ends the conn.
            if events.iter().any(|e| e.token == 3 && (e.readable || e.hangup)) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "hangup never fired");
        }
    }

    #[test]
    fn wake_fd_interrupts_a_wait_and_drains() {
        let poll = Poll::new().unwrap();
        let wake = std::sync::Arc::new(WakeFd::new().unwrap());
        poll.add(wake.fd(), 99, EPOLLIN).unwrap();
        let waker = std::sync::Arc::clone(&wake);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let mut events = Vec::new();
        poll.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
        wake.drain();
        poll.wait(&mut events, Some(Duration::from_millis(5))).unwrap();
        assert!(events.is_empty(), "drained wake fd still polls readable");
        t.join().unwrap();
    }
}
