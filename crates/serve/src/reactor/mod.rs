//! The readiness-driven front end: one event-loop thread serving every
//! connection, instead of one thread per connection.
//!
//! A connection here costs bytes, not a thread stack: each is a small
//! state machine (read buffer → incremental frame parse → dispatch →
//! write buffer with backpressure) registered with the [`poll`] epoll
//! wrapper. Protocol v3 frames carry a `frame_id`, so one connection can
//! pipeline many requests and take responses in whatever order the
//! executor finishes them; v1/v2 frames are served one-in-flight at their
//! arrival version, exactly like the thread-per-connection front end.
//!
//! The event loop never blocks on the executor. `Predict`/`Schedule`
//! submissions return an mpsc receiver; the executor's completion hook
//! pings a [`poll::WakeFd`] when a batch finishes, and the loop sweeps
//! the in-flight receivers with `try_recv` — replies are written the
//! moment they exist, without polling.
//!
//! The hardening contract matches the threads front end byte for byte:
//! reads and writes run through the same [`FaultStream`] injection sites,
//! oversized length prefixes get a typed refusal before any allocation,
//! mid-frame stalls are closed after `read_timeout`, idle connections are
//! reaped at frame boundaries after `idle_timeout`, stalled writes are
//! closed after `write_timeout`, and every outcome lands in the same
//! `faults` counters — so `repro_chaos` asserts one contract across both
//! front ends.

pub mod poll;

use crate::executor::Executor;
use crate::fault::{FaultSite, FaultStream};
use crate::proto::{
    decode_request_framed, encode_response_framed, ProtoError, Response, MAX_FRAME_LEN,
    PROTO_VERSION,
};
use crate::server::{classify_read_error, dispatch_async, ConnLimits, Dispatched};
use crate::stats::{FaultCounters, ServeStats};
use poll::{Poll, WakeFd, EPOLLIN, EPOLLOUT};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOK_LISTENER: u64 = 0;
const TOK_WAKE: u64 = 1;
const TOK_FIRST_CONN: u64 = 2;

/// Stop reading a connection whose peer is not draining its responses
/// once this many unsent bytes pile up; resume below half.
const WRITE_BACKPRESSURE: usize = 4 << 20;

/// One request submitted to the executor whose reply has not been
/// written back yet.
struct InFlight {
    version: u8,
    frame_id: u64,
    rx: Receiver<Response>,
}

/// Per-connection state machine.
struct Conn {
    fd: i32,
    reader: FaultStream<TcpStream>,
    writer: FaultStream<TcpStream>,
    /// Inbound bytes not yet parsed into frames.
    read_buf: Vec<u8>,
    /// Outbound bytes the kernel has not accepted yet.
    write_buf: Vec<u8>,
    write_pos: usize,
    in_flight: Vec<InFlight>,
    /// When the (incomplete) frame at the head of `read_buf` started —
    /// the mid-frame stall clock.
    partial_since: Option<Instant>,
    /// When the current write stall started.
    write_stalled_since: Option<Instant>,
    /// Last time a frame byte arrived — the idle clock.
    last_activity: Instant,
    /// No more reads; close once responses are written.
    closing: bool,
    /// Torn down at the end of the iteration.
    dead: bool,
    /// Interest set currently registered with the poller.
    interest: u32,
}

impl Conn {
    fn write_pending(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// A pre-v3 request in flight blocks further parsing: those versions
    /// are strictly one-in-flight, responses in request order.
    fn blocked(&self) -> bool {
        self.in_flight.iter().any(|f| f.version < PROTO_VERSION)
    }

    fn queue_response(&mut self, version: u8, frame_id: u64, resp: &Response) {
        let payload = encode_response_framed(resp, version, frame_id);
        self.write_buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.write_buf.extend_from_slice(&payload);
    }
}

struct Reactor {
    poll: Poll,
    wake: Arc<WakeFd>,
    executor: Arc<Executor>,
    stats: Arc<ServeStats>,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicU64>,
    limits: ConnLimits,
    conns: HashMap<u64, Conn>,
    next_token: u64,
}

/// Runs the event loop until shutdown. Called on its own thread by
/// `server::start` when the `reactor` front end is selected; returns
/// after the post-shutdown drain.
pub(crate) fn serve_reactor(
    listener: TcpListener,
    executor: Arc<Executor>,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicU64>,
    limits: ConnLimits,
) -> std::io::Result<()> {
    let poll = Poll::new()?;
    let wake = Arc::new(WakeFd::new()?);
    poll.add(listener.as_raw_fd(), TOK_LISTENER, EPOLLIN)?;
    poll.add(wake.fd(), TOK_WAKE, EPOLLIN)?;
    {
        // Completed batches wake the loop immediately; the Arc keeps the
        // eventfd alive past the loop so a late hook call cannot hit a
        // recycled fd.
        let wake = Arc::clone(&wake);
        executor.set_completion_hook(Box::new(move || wake.wake()));
    }
    let stats = Arc::clone(executor.stats());
    let mut r = Reactor {
        poll,
        wake,
        executor,
        stats,
        shutdown,
        active,
        limits,
        conns: HashMap::new(),
        next_token: TOK_FIRST_CONN,
    };
    let result = r.run(&listener);
    // Tear down whatever is still registered so gauges and the server's
    // active-connection count return to zero.
    let leftover = r.conns.len() as u64;
    for conn in r.conns.values() {
        let _ = r.poll.remove(conn.fd);
        r.stats
            .reactor
            .pipelined_in_flight
            .fetch_sub(conn.in_flight.len() as u64, Ordering::Relaxed);
    }
    r.conns.clear();
    r.active.fetch_sub(leftover, Ordering::SeqCst);
    r.stats.reactor.open_connections.fetch_sub(leftover, Ordering::Relaxed);
    result
}

impl Reactor {
    fn run(&mut self, listener: &TcpListener) -> std::io::Result<()> {
        let tick = self.limits.tick();
        let mut events = Vec::new();
        let mut drain_deadline: Option<Instant> = None;
        loop {
            self.poll.wait(&mut events, Some(tick))?;
            FaultCounters::bump(&self.stats.reactor.wakeups);
            let draining = drain_deadline.is_some();
            for ev in &events {
                match ev.token {
                    TOK_WAKE => self.wake.drain(),
                    TOK_LISTENER => {
                        if !draining {
                            self.accept_all(listener);
                        }
                    }
                    token => {
                        let Some(conn) = self.conns.get_mut(&token) else { continue };
                        if conn.dead {
                            continue;
                        }
                        if ev.readable || ev.hangup {
                            on_readable(conn, &self.executor, &self.stats, &self.shutdown);
                        }
                    }
                }
            }
            self.sweep_completions();
            self.sweep_timeouts();
            self.flush_all();
            self.reap_dead();

            if self.shutdown.load(Ordering::SeqCst) {
                let deadline =
                    *drain_deadline.get_or_insert_with(|| Instant::now() + Duration::from_secs(5));
                // Drain: in-flight replies are still written, new frames
                // already answer `ShuttingDown`; leave once every
                // response is out or the drain window closes.
                let busy =
                    self.conns.values().any(|c| !c.in_flight.is_empty() || c.write_pending() > 0);
                if !busy || Instant::now() >= deadline {
                    return Ok(());
                }
            }
        }
    }

    fn accept_all(&mut self, listener: &TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.register(stream).is_err() {
                        continue; // the socket is dropped; the peer sees a reset
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn register(&mut self, stream: TcpStream) -> std::io::Result<()> {
        stream.set_nodelay(true).ok();
        // O_NONBLOCK lives on the file description, so the dup below
        // shares it.
        stream.set_nonblocking(true)?;
        let fault = self.executor.fault().clone();
        let reader = FaultStream::new(stream.try_clone()?, fault.clone(), FaultSite::ConnRead);
        let fd = stream.as_raw_fd();
        let writer = FaultStream::new(stream, fault, FaultSite::ConnWrite);
        let token = self.next_token;
        self.next_token += 1;
        let interest = EPOLLIN;
        self.poll.add(fd, token, interest)?;
        self.conns.insert(
            token,
            Conn {
                fd,
                reader,
                writer,
                read_buf: Vec::new(),
                write_buf: Vec::new(),
                write_pos: 0,
                in_flight: Vec::new(),
                partial_since: None,
                write_stalled_since: None,
                last_activity: Instant::now(),
                closing: false,
                dead: false,
                interest,
            },
        );
        self.active.fetch_add(1, Ordering::SeqCst);
        self.stats.reactor.open_connections.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Collects finished executor replies and writes them back, in
    /// completion order — this is where out-of-order pipelining happens.
    fn sweep_completions(&mut self) {
        for conn in self.conns.values_mut() {
            if conn.dead || conn.in_flight.is_empty() {
                continue;
            }
            let mut done = 0u64;
            let mut i = 0;
            while i < conn.in_flight.len() {
                match conn.in_flight[i].rx.try_recv() {
                    Ok(resp) => {
                        let f = conn.in_flight.remove(i);
                        conn.queue_response(f.version, f.frame_id, &resp);
                        done += 1;
                    }
                    Err(TryRecvError::Empty) => i += 1,
                    Err(TryRecvError::Disconnected) => {
                        // The executor always answers accepted jobs, so a
                        // dropped sender means a worker died mid-job.
                        let f = conn.in_flight.remove(i);
                        let resp = Response::Error("worker dropped the request".to_string());
                        conn.queue_response(f.version, f.frame_id, &resp);
                        done += 1;
                    }
                }
            }
            if done > 0 {
                self.stats.reactor.pipelined_in_flight.fetch_sub(done, Ordering::Relaxed);
                if !conn.blocked() {
                    // A serial (pre-v3) request was answered: frames that
                    // queued up behind it can now be parsed.
                    parse_frames(conn, &self.executor, &self.stats, &self.shutdown);
                }
            }
        }
    }

    fn sweep_timeouts(&mut self) {
        let now = Instant::now();
        for conn in self.conns.values_mut() {
            if conn.dead {
                continue;
            }
            if let Some(t0) = conn.partial_since {
                if now.duration_since(t0) >= self.limits.read_timeout {
                    FaultCounters::bump(&self.stats.faults.conn_read_timeouts);
                    conn.dead = true;
                    continue;
                }
            }
            if let Some(t0) = conn.write_stalled_since {
                if now.duration_since(t0) >= self.limits.write_timeout {
                    FaultCounters::bump(&self.stats.faults.conn_write_timeouts);
                    conn.dead = true;
                    continue;
                }
            }
            let idle = !conn.closing
                && conn.read_buf.is_empty()
                && conn.in_flight.is_empty()
                && conn.write_pending() == 0;
            if idle && now.duration_since(conn.last_activity) >= self.limits.idle_timeout {
                FaultCounters::bump(&self.stats.faults.conn_idle_reaped);
                conn.dead = true;
            }
        }
    }

    fn flush_all(&mut self) {
        for (&token, conn) in self.conns.iter_mut() {
            if conn.dead {
                continue;
            }
            flush(conn, &self.stats);
            if conn.dead {
                continue;
            }
            if conn.closing && conn.in_flight.is_empty() && conn.write_pending() == 0 {
                conn.dead = true;
                continue;
            }
            // Re-arm interest: reads unless closing or backpressured,
            // writes only while bytes are stuck in the buffer.
            let mut want = 0;
            if !conn.closing
                && conn.write_pending() < WRITE_BACKPRESSURE
                && conn.read_buf.len() <= MAX_FRAME_LEN + 4
            {
                want |= EPOLLIN;
            }
            if conn.write_pending() > 0 {
                want |= EPOLLOUT;
            }
            if want != conn.interest {
                let _ = self.poll.modify(conn.fd, token, want);
                conn.interest = want;
            }
        }
    }

    fn reap_dead(&mut self) {
        let poll = &self.poll;
        let active = &self.active;
        let stats = &self.stats;
        self.conns.retain(|_, conn| {
            if !conn.dead {
                return true;
            }
            let _ = poll.remove(conn.fd);
            active.fetch_sub(1, Ordering::SeqCst);
            stats.reactor.open_connections.fetch_sub(1, Ordering::Relaxed);
            stats
                .reactor
                .pipelined_in_flight
                .fetch_sub(conn.in_flight.len() as u64, Ordering::Relaxed);
            false
        });
    }
}

/// Reads everything the socket has, then parses and dispatches frames.
fn on_readable(
    conn: &mut Conn,
    executor: &Arc<Executor>,
    stats: &ServeStats,
    shutdown: &AtomicBool,
) {
    if conn.closing {
        return;
    }
    let mut saw_eof = false;
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.reader.read(&mut chunk) {
            Ok(0) => {
                saw_eof = true;
                break;
            }
            Ok(n) => {
                conn.read_buf.extend_from_slice(&chunk[..n]);
                conn.last_activity = Instant::now();
                // A backpressured or flooded connection stops reading
                // even if more bytes are waiting; level-triggered epoll
                // re-delivers them.
                if conn.read_buf.len() > MAX_FRAME_LEN + 4 {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) => {
                classify_read_error(e, stats);
                conn.dead = true;
                return;
            }
        }
    }
    parse_frames(conn, executor, stats, shutdown);
    if saw_eof && !conn.dead {
        if conn.read_buf.is_empty() {
            if conn.in_flight.is_empty() && conn.write_pending() == 0 {
                conn.dead = true; // clean EOF at a frame boundary
            } else {
                conn.closing = true; // EOF with replies still owed: finish writing first
            }
        } else {
            // Bytes that can never become a frame: the peer died mid-frame.
            FaultCounters::bump(&stats.faults.conn_resets);
            conn.dead = true;
        }
    }
}

/// Extracts complete frames from the read buffer and dispatches them.
fn parse_frames(
    conn: &mut Conn,
    executor: &Arc<Executor>,
    stats: &ServeStats,
    shutdown: &AtomicBool,
) {
    let mut progressed = false;
    while !conn.closing && !conn.dead && !conn.blocked() {
        if conn.read_buf.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes(conn.read_buf[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_LEN {
            // Same typed refusal as the threads front end, written before
            // the close — and checked before any allocation is sized.
            FaultCounters::bump(&stats.faults.frames_too_large);
            let msg = format!("protocol error: {}", ProtoError::FrameTooLarge(len));
            conn.queue_response(PROTO_VERSION, 0, &Response::Error(msg));
            conn.closing = true;
            break;
        }
        if conn.read_buf.len() < 4 + len {
            break;
        }
        let payload: Vec<u8> = conn.read_buf[4..4 + len].to_vec();
        conn.read_buf.drain(..4 + len);
        progressed = true;
        handle_frame(conn, &payload, executor, stats, shutdown);
    }
    // The stall clock runs only while an incomplete frame heads the
    // buffer; a serially-blocked buffer holds complete frames, which is
    // healthy pipelining by an eager client, not a stall.
    conn.partial_since = if !conn.read_buf.is_empty() && !conn.blocked() && !conn.closing {
        if progressed {
            Some(Instant::now())
        } else {
            conn.partial_since.or_else(|| Some(Instant::now()))
        }
    } else {
        None
    };
}

/// Decodes and dispatches one frame, queueing the response (or parking a
/// receiver in `in_flight`).
fn handle_frame(
    conn: &mut Conn,
    payload: &[u8],
    executor: &Arc<Executor>,
    stats: &ServeStats,
    shutdown: &AtomicBool,
) {
    match decode_request_framed(payload) {
        Err(e) => {
            FaultCounters::bump(&stats.faults.protocol_errors);
            let resp = Response::Error(format!("protocol error: {e}"));
            conn.queue_response(PROTO_VERSION, 0, &resp);
        }
        Ok((version, frame_id, _)) if shutdown.load(Ordering::SeqCst) => {
            conn.queue_response(version, frame_id, &Response::ShuttingDown);
        }
        Ok((version, frame_id, request)) => match dispatch_async(request, executor, shutdown) {
            Dispatched::Ready(resp) => conn.queue_response(version, frame_id, &resp),
            Dispatched::Pending(rx) => {
                conn.in_flight.push(InFlight { version, frame_id, rx });
                stats.reactor.pipelined_in_flight.fetch_add(1, Ordering::Relaxed);
            }
        },
    }
}

/// Pushes buffered response bytes into the socket until it would block.
fn flush(conn: &mut Conn, stats: &ServeStats) {
    while conn.write_pos < conn.write_buf.len() {
        match conn.writer.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => {
                FaultCounters::bump(&stats.faults.conn_resets);
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.write_pos += n;
                conn.write_stalled_since = None;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if conn.write_stalled_since.is_none() {
                    conn.write_stalled_since = Some(Instant::now());
                }
                break;
            }
            Err(e) => {
                match e.kind() {
                    std::io::ErrorKind::TimedOut => {
                        FaultCounters::bump(&stats.faults.conn_write_timeouts);
                    }
                    _ => FaultCounters::bump(&stats.faults.conn_resets),
                }
                conn.dead = true;
                return;
            }
        }
    }
    if conn.write_pos == conn.write_buf.len() {
        conn.write_buf.clear();
        conn.write_pos = 0;
        conn.write_stalled_since = None;
    } else if conn.write_pos > WRITE_BACKPRESSURE / 2 {
        conn.write_buf.drain(..conn.write_pos);
        conn.write_pos = 0;
    }
}
