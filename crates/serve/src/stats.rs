//! Live service telemetry: latency quantiles, request counters, queue
//! depths, and the per-model SMSV view.
//!
//! Latencies go into a fixed log2-bucketed histogram ([`LatencyHistogram`])
//! — relaxed atomic adds on the hot path, quantiles computed only when a
//! `Stats` request asks. Per-model kernel counters are folded into one
//! process-wide [`SmsvSnapshot`] with the delta-merge discipline from
//! `dls_sparse::telemetry`, so polling never double counts.

use crate::proto::RequestClass;
use crate::registry::ModelRegistry;
use dls_core::json::JsonValue;
use dls_sparse::telemetry::format_index;
use dls_sparse::{Format, SmsvCounters, SmsvSnapshot, BLOCK_HIST_BUCKETS};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of log2 latency buckets: bucket `k` counts observations with
/// `2^k <= nanos < 2^(k+1)`; the last bucket is open-ended (≈ 9+ seconds).
pub const LATENCY_BUCKETS: usize = 40;

/// Lock-free log2 latency histogram.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        let bucket = (63 - nanos.max(1).leading_zeros()) as usize;
        self.buckets[bucket.min(LATENCY_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate quantile in seconds (`q` in `[0, 1]`): the upper edge
    /// of the bucket holding the q-th observation — within 2× of the true
    /// value, which is the resolution scheduling dashboards need. `None`
    /// with no observations.
    pub fn quantile_secs(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (k, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(2f64.powi(k as i32 + 1) * 1e-9);
            }
        }
        Some(2f64.powi(LATENCY_BUCKETS as i32) * 1e-9)
    }

    /// Mean latency in seconds, `None` with no observations.
    pub fn mean_secs(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.total_nanos.load(Ordering::Relaxed) as f64 * 1e-9 / n as f64)
    }
}

/// Counters for one request kind.
#[derive(Debug, Default)]
pub struct RequestStats {
    /// Requests answered successfully.
    pub ok: AtomicU64,
    /// Requests refused with `Busy` (queue full).
    pub busy: AtomicU64,
    /// Requests answered with `TimedOut`.
    pub timed_out: AtomicU64,
    /// Requests answered with `Error`.
    pub errors: AtomicU64,
    /// Enqueue-to-reply latency of successful requests.
    pub latency: LatencyHistogram,
}

impl RequestStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a success with its latency.
    pub fn record_ok(&self, latency: Duration) {
        Self::bump(&self.ok);
        self.latency.record(latency);
    }

    /// Records a `Busy` rejection.
    pub fn record_busy(&self) {
        Self::bump(&self.busy);
    }

    /// Records a deadline expiry.
    pub fn record_timeout(&self) {
        Self::bump(&self.timed_out);
    }

    /// Records an error reply.
    pub fn record_error(&self) {
        Self::bump(&self.errors);
    }

    fn to_json(&self) -> JsonValue {
        let q =
            |p: f64| self.latency.quantile_secs(p).map(JsonValue::from).unwrap_or(JsonValue::Null);
        JsonValue::obj([
            ("ok", JsonValue::from(self.ok.load(Ordering::Relaxed))),
            ("busy", JsonValue::from(self.busy.load(Ordering::Relaxed))),
            ("timed_out", JsonValue::from(self.timed_out.load(Ordering::Relaxed))),
            ("errors", JsonValue::from(self.errors.load(Ordering::Relaxed))),
            ("p50_secs", q(0.50)),
            ("p95_secs", q(0.95)),
            ("mean_secs", self.latency.mean_secs().map(JsonValue::from).unwrap_or(JsonValue::Null)),
        ])
    }
}

/// Per-request-class counters for the predict path: the observability the
/// SLO-aware scheduler is judged by.
#[derive(Debug, Default)]
pub struct ClassStats {
    /// Requests of this class answered with predictions.
    pub ok: AtomicU64,
    /// Requests that expired in the queue.
    pub timed_out: AtomicU64,
    /// Completions that missed the request's effective deadline — timeouts
    /// plus answers delivered late.
    pub slo_violations: AtomicU64,
    /// Requests refused by predictive admission (the estimator projected a
    /// miss before queueing). A subset of the global `busy` count.
    pub busy_predicted: AtomicU64,
    /// Enqueue-to-reply latency of successful requests of this class.
    pub latency: LatencyHistogram,
}

impl ClassStats {
    /// Records a completed request; `violated` marks an answer delivered
    /// after its effective deadline.
    pub fn record_ok(&self, latency: Duration, violated: bool) {
        self.ok.fetch_add(1, Ordering::Relaxed);
        if violated {
            self.slo_violations.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(latency);
    }

    /// Records a queue-expiry timeout (always an SLO violation).
    pub fn record_timeout(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
        self.slo_violations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a predictive-admission refusal.
    pub fn record_busy_predicted(&self) {
        self.busy_predicted.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed requests (answered or timed out).
    pub fn completed(&self) -> u64 {
        self.ok.load(Ordering::Relaxed) + self.timed_out.load(Ordering::Relaxed)
    }

    /// Fraction of completed requests that violated their SLO (0 when
    /// nothing has completed).
    pub fn slo_violation_rate(&self) -> f64 {
        let done = self.completed();
        if done == 0 {
            0.0
        } else {
            self.slo_violations.load(Ordering::Relaxed) as f64 / done as f64
        }
    }

    fn to_json(&self) -> JsonValue {
        let q =
            |p: f64| self.latency.quantile_secs(p).map(JsonValue::from).unwrap_or(JsonValue::Null);
        JsonValue::obj([
            ("ok", JsonValue::from(self.ok.load(Ordering::Relaxed))),
            ("timed_out", JsonValue::from(self.timed_out.load(Ordering::Relaxed))),
            ("slo_violations", JsonValue::from(self.slo_violations.load(Ordering::Relaxed))),
            ("busy_predicted", JsonValue::from(self.busy_predicted.load(Ordering::Relaxed))),
            ("slo_violation_rate", JsonValue::from(self.slo_violation_rate())),
            ("p50_secs", q(0.50)),
            ("p95_secs", q(0.95)),
            ("p99_secs", q(0.99)),
        ])
    }
}

/// Counters for failures observed (or injected) along the serving path.
/// These make every hardening mechanism in this crate observable: a chaos
/// run asserts on them, and an operator reads them to tell "slow clients"
/// from "poisoned model" at a glance.
#[derive(Debug, Default)]
pub struct FaultCounters {
    /// Connections closed because a frame stalled mid-read past the read
    /// timeout (framing desync — the connection cannot be salvaged).
    pub conn_read_timeouts: AtomicU64,
    /// Connections closed because a response write stalled or failed.
    pub conn_write_timeouts: AtomicU64,
    /// Connections reaped after sitting idle at a frame boundary past the
    /// idle timeout.
    pub conn_idle_reaped: AtomicU64,
    /// Connections dropped by the peer (reset / broken pipe) mid-exchange.
    pub conn_resets: AtomicU64,
    /// Frames rejected at the length prefix (`FrameTooLarge`).
    pub frames_too_large: AtomicU64,
    /// Frames that decoded to a typed protocol error.
    pub protocol_errors: AtomicU64,
    /// Kernel executions that panicked and were isolated by `catch_unwind`.
    pub exec_panics: AtomicU64,
    /// Submissions refused because the registry/model was unavailable
    /// (quarantined model or injected registry failure).
    pub registry_unavailable: AtomicU64,
    /// Faults fired by an installed `FaultPlan` (0 in production).
    pub injected: AtomicU64,
}

impl FaultCounters {
    /// Bumps one counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn to_json(&self) -> JsonValue {
        let get = |c: &AtomicU64| JsonValue::from(c.load(Ordering::Relaxed));
        JsonValue::obj([
            ("conn_read_timeouts", get(&self.conn_read_timeouts)),
            ("conn_write_timeouts", get(&self.conn_write_timeouts)),
            ("conn_idle_reaped", get(&self.conn_idle_reaped)),
            ("conn_resets", get(&self.conn_resets)),
            ("frames_too_large", get(&self.frames_too_large)),
            ("protocol_errors", get(&self.protocol_errors)),
            ("exec_panics", get(&self.exec_panics)),
            ("registry_unavailable", get(&self.registry_unavailable)),
            ("injected", get(&self.injected)),
        ])
    }
}

/// Counters and gauges for graceful degradation: the brown-out controller
/// and the model health ladder.
#[derive(Debug, Default)]
pub struct DegradeCounters {
    /// Times the brown-out controller activated.
    pub brownout_entries: AtomicU64,
    /// Times the brown-out controller deactivated.
    pub brownout_exits: AtomicU64,
    /// Batch-class requests shed (refused with `Busy`) while browned out.
    pub batch_shed: AtomicU64,
    /// Models moved to the degraded rung (analytic-fallback matrix).
    pub models_degraded: AtomicU64,
    /// Models quarantined after repeated panics.
    pub models_quarantined: AtomicU64,
    /// Gauge: 1 while the brown-out controller is active.
    pub brownout_active: AtomicU64,
    /// Gauge: 1 while admission uses the analytic estimator instead of the
    /// learned tree.
    pub estimator_analytic: AtomicU64,
}

impl DegradeCounters {
    fn to_json(&self) -> JsonValue {
        let get = |c: &AtomicU64| JsonValue::from(c.load(Ordering::Relaxed));
        JsonValue::obj([
            ("brownout_entries", get(&self.brownout_entries)),
            ("brownout_exits", get(&self.brownout_exits)),
            ("batch_shed", get(&self.batch_shed)),
            ("models_degraded", get(&self.models_degraded)),
            ("models_quarantined", get(&self.models_quarantined)),
            ("brownout_active", get(&self.brownout_active)),
            ("estimator_analytic", get(&self.estimator_analytic)),
        ])
    }
}

/// Counters and gauges for the readiness-driven front end
/// (`serve::reactor`) and the sharded executor's work stealing. All zero
/// under the thread-per-connection front end (except `steals`, which the
/// executor owns regardless of front end).
#[derive(Debug, Default)]
pub struct ReactorCounters {
    /// Gauge: connections currently registered with the reactor.
    pub open_connections: AtomicU64,
    /// Gauge: pipelined requests currently in flight (submitted to the
    /// executor, response not yet written back).
    pub pipelined_in_flight: AtomicU64,
    /// Times an executor worker drained a lane outside its home shard.
    pub steals: AtomicU64,
    /// Readiness wakeups: one per `epoll_wait` return in the event loop.
    pub wakeups: AtomicU64,
}

impl ReactorCounters {
    fn to_json(&self) -> JsonValue {
        let get = |c: &AtomicU64| JsonValue::from(c.load(Ordering::Relaxed));
        JsonValue::obj([
            ("open_connections", get(&self.open_connections)),
            ("pipelined_in_flight", get(&self.pipelined_in_flight)),
            ("steals", get(&self.steals)),
            ("wakeups", get(&self.wakeups)),
        ])
    }
}

/// Gauges for the online-learning feedback loop (`serve::feedback`): the
/// live model version, ensemble size, confidence-fallback counters, and
/// retrain outcomes. All store-synced from the [`crate::FeedbackHub`] on
/// every `Stats` request; all zero when no feedback hub is configured.
#[derive(Debug, Default)]
pub struct SelectorCounters {
    /// Active model version — the hot-swap generation (1 = the selector
    /// the server started with).
    pub active_version: AtomicU64,
    /// Trees in the live model: 0 analytic rules, 1 single CART, 3..=7
    /// bagged forest.
    pub ensemble_size: AtomicU64,
    /// Selections made by the live hybrid selector.
    pub decisions: AtomicU64,
    /// Selections that fell below the confidence gate and were decided by
    /// the analytic rules.
    pub fallbacks: AtomicU64,
    /// Observations ever appended to the telemetry ring.
    pub observations: AtomicU64,
    /// Observations overwritten before a retrainer drained them.
    pub observations_dropped: AtomicU64,
    /// Retrain cycles whose candidate was published.
    pub retrains_accepted: AtomicU64,
    /// Retrain cycles rolled back by the regret guard.
    pub retrains_rolled_back: AtomicU64,
    /// Last retrain outcome: 0 none, 1 accepted, 2 rolled back (see
    /// [`crate::feedback::retrain_outcome_name`]).
    pub last_retrain: AtomicU64,
}

impl SelectorCounters {
    /// Fraction of hybrid selections decided by the rule fallback.
    pub fn fallback_rate(&self) -> f64 {
        let d = self.decisions.load(Ordering::Relaxed);
        if d == 0 {
            0.0
        } else {
            self.fallbacks.load(Ordering::Relaxed) as f64 / d as f64
        }
    }

    fn to_json(&self) -> JsonValue {
        let get = |c: &AtomicU64| JsonValue::from(c.load(Ordering::Relaxed));
        JsonValue::obj([
            ("active_version", get(&self.active_version)),
            ("ensemble_size", get(&self.ensemble_size)),
            ("decisions", get(&self.decisions)),
            ("fallbacks", get(&self.fallbacks)),
            ("fallback_rate", JsonValue::from(self.fallback_rate())),
            ("observations", get(&self.observations)),
            ("observations_dropped", get(&self.observations_dropped)),
            ("retrains_accepted", get(&self.retrains_accepted)),
            ("retrains_rolled_back", get(&self.retrains_rolled_back)),
            (
                "last_retrain_outcome",
                JsonValue::from(crate::feedback::retrain_outcome_name(
                    self.last_retrain.load(Ordering::Relaxed),
                )),
            ),
        ])
    }
}

/// All live counters one server instance keeps.
#[derive(Default)]
pub struct ServeStats {
    /// Predict-path counters.
    pub predict: RequestStats,
    /// Predict-path counters split by request class, indexed by
    /// [`RequestClass::index`].
    pub classes: [ClassStats; 2],
    /// Schedule-path counters.
    pub schedule: RequestStats,
    /// Stats-path counters.
    pub stats: RequestStats,
    /// Failures observed along the serving path.
    pub faults: FaultCounters,
    /// Degradation state: brown-out transitions and the model health
    /// ladder.
    pub degrade: DegradeCounters,
    /// Readiness front-end gauges and executor steal count.
    pub reactor: ReactorCounters,
    /// Online-learning selector gauges (version, ensemble, fallbacks,
    /// retrain outcomes).
    pub selector: SelectorCounters,
    /// How often the scheduler chose each format, in [`Format::ALL`] order.
    decisions: [AtomicU64; Format::ALL.len()],
    /// Process-wide kernel aggregate, fed by delta-merging every model's
    /// counters (never double counts, however often it is polled).
    aggregate: SmsvCounters,
    last_per_model: Mutex<HashMap<String, SmsvSnapshot>>,
}

impl ServeStats {
    /// Fresh zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-class predict counters for one class.
    pub fn class(&self, class: RequestClass) -> &ClassStats {
        &self.classes[class.index()]
    }

    /// Records one scheduling decision.
    pub fn record_decision(&self, format: Format) {
        self.decisions[format_index(format)].fetch_add(1, Ordering::Relaxed);
    }

    /// Scheduling decisions per format, in [`Format::ALL`] order.
    pub fn decisions(&self) -> [u64; Format::ALL.len()] {
        let mut out = [0; Format::ALL.len()];
        for (o, d) in out.iter_mut().zip(self.decisions.iter()) {
            *o = d.load(Ordering::Relaxed);
        }
        out
    }

    /// Folds every model's *new* kernel activity into the process-wide
    /// aggregate and returns the aggregate's current snapshot.
    pub fn aggregate_kernels(&self, registry: &ModelRegistry) -> SmsvSnapshot {
        let mut last = self.last_per_model.lock().expect("stats poisoned");
        for served in registry.iter() {
            let now = served.counters().snapshot();
            let earlier = last.entry(served.name().to_string()).or_default();
            self.aggregate.merge_snapshot(&now.delta(earlier));
            *earlier = now;
        }
        self.aggregate.snapshot()
    }

    /// Full service snapshot as a JSON document: request-kind counters,
    /// queue depths (supplied by the executor), per-model kernel telemetry
    /// and the process-wide aggregate.
    pub fn snapshot_json(
        &self,
        registry: &ModelRegistry,
        queue_depths: &[(String, usize)],
    ) -> String {
        let queues = queue_depths
            .iter()
            .map(|(name, depth)| {
                JsonValue::obj([
                    ("queue", JsonValue::from(name.as_str())),
                    ("depth", JsonValue::from(*depth)),
                ])
            })
            .collect::<Vec<_>>();
        let decisions = Format::ALL
            .iter()
            .zip(self.decisions())
            .filter(|&(_, n)| n > 0)
            .map(|(&f, n)| JsonValue::obj([(f.name(), JsonValue::from(n))]))
            .collect::<Vec<_>>();
        let models = registry
            .iter()
            .map(|served| {
                let snap = served.counters().snapshot();
                JsonValue::obj([
                    ("model", JsonValue::from(served.name())),
                    (
                        "format",
                        served
                            .format()
                            .map(|f| JsonValue::from(f.name()))
                            .unwrap_or(JsonValue::Null),
                    ),
                    ("dim", JsonValue::from(served.dim())),
                    (
                        "tuned_block",
                        served
                            .report()
                            .map(|r| JsonValue::from(r.block))
                            .unwrap_or(JsonValue::Null),
                    ),
                    ("health", JsonValue::from(served.health().name())),
                    ("panics", JsonValue::from(served.panics())),
                    ("kernels", kernel_json(&snap)),
                ])
            })
            .collect::<Vec<_>>();
        let aggregate = kernel_json(&self.aggregate_kernels(registry));
        let classes =
            JsonValue::obj(RequestClass::ALL.map(|c| (c.name(), self.class(c).to_json())));
        JsonValue::obj([
            ("predict", self.predict.to_json()),
            ("classes", classes),
            ("schedule", self.schedule.to_json()),
            ("stats", self.stats.to_json()),
            ("faults", self.faults.to_json()),
            ("degradation", self.degrade.to_json()),
            ("reactor", self.reactor.to_json()),
            ("selector", self.selector.to_json()),
            ("queues", JsonValue::Arr(queues)),
            ("schedule_decisions", JsonValue::Arr(decisions)),
            ("models", JsonValue::Arr(models)),
            ("aggregate", aggregate),
        ])
        .to_json()
    }
}

/// One kernel snapshot as JSON: per-format calls/nanos, the block-size
/// histogram, and the multi-vector block count that proves coalescing.
fn kernel_json(snap: &SmsvSnapshot) -> JsonValue {
    let formats = Format::ALL
        .iter()
        .map(|&f| snap.sample(f))
        .zip(Format::ALL.iter())
        .filter(|(s, _)| s.calls > 0)
        .map(|(s, &f)| {
            JsonValue::obj([
                ("format", JsonValue::from(f.name())),
                ("calls", JsonValue::from(s.calls)),
                ("nanos", JsonValue::from(s.nanos)),
                ("bytes", JsonValue::from(s.bytes)),
            ])
        })
        .collect::<Vec<_>>();
    let hist: Vec<JsonValue> = snap.block_hist.iter().map(|&n| JsonValue::from(n)).collect();
    JsonValue::obj([
        ("total_calls", JsonValue::from(snap.total_calls())),
        ("allocs_avoided", JsonValue::from(snap.allocs_avoided)),
        ("block_hist", JsonValue::Arr(hist)),
        ("multi_vector_blocks", JsonValue::from(snap.multi_vector_blocks())),
        ("formats", JsonValue::Arr(formats)),
    ])
}

/// Parses the block-size histogram back out of a `Stats` JSON document —
/// the client-side accessor the integration tests and CLI view use.
pub fn parse_block_hist(stats_json: &str) -> Result<[u64; BLOCK_HIST_BUCKETS], String> {
    let doc = dls_core::json::parse(stats_json)?;
    let hist = doc
        .get("aggregate")
        .and_then(|a| a.get("block_hist"))
        .and_then(JsonValue::as_arr)
        .ok_or("missing aggregate.block_hist")?;
    let mut out = [0u64; BLOCK_HIST_BUCKETS];
    for (o, v) in out.iter_mut().zip(hist) {
        *o = v.as_u64().ok_or("non-integer histogram bucket")?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ServedModel;
    use dls_core::LayoutScheduler;
    use dls_sparse::SparseVec;
    use dls_svm::{KernelKind, PredictWorkspace, SvmModel};

    #[test]
    fn latency_quantiles_bracket_observations() {
        let h = LatencyHistogram::default();
        for us in [10u64, 20, 30, 40, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_secs(0.5).unwrap();
        // Third observation (30 µs) lands in the 16–32 µs bucket.
        assert!((30e-6..=64e-6).contains(&p50), "{p50}");
        let p95 = h.quantile_secs(0.95).unwrap();
        assert!((1e-3..=3e-3).contains(&p95), "{p95}");
        assert!(h.mean_secs().unwrap() > 0.0);
        assert_eq!(LatencyHistogram::default().quantile_secs(0.5), None);
    }

    #[test]
    fn snapshot_json_carries_the_block_histogram() {
        let scheduler = LayoutScheduler::new();
        let svs: Vec<SparseVec> =
            (0..4).map(|i| SparseVec::new(8, vec![i, i + 4], vec![1.0, -1.0])).collect();
        let model = SvmModel::new(KernelKind::Linear, svs, vec![1.0, -1.0, 0.5, -0.5], 0.0);
        let mut registry = ModelRegistry::new();
        registry.insert(ServedModel::new("m", model, &scheduler));

        let served = registry.get("m").unwrap().clone();
        let mut ws = PredictWorkspace::new();
        let xs: Vec<SparseVec> = (0..5).map(|i| SparseVec::new(8, vec![i], vec![1.0])).collect();
        served.predict(&xs, &mut ws); // one blocked call, B = 5

        let stats = ServeStats::new();
        stats.predict.record_ok(Duration::from_micros(120));
        stats.class(RequestClass::Interactive).record_ok(Duration::from_micros(120), false);
        stats.class(RequestClass::Batch).record_ok(Duration::from_millis(4), true);
        stats.class(RequestClass::Batch).record_timeout();
        stats.record_decision(Format::Csr);
        let json = stats.snapshot_json(&registry, &[("predict:m".into(), 3)]);
        let hist = parse_block_hist(&json).unwrap();
        assert_eq!(hist[2], 1, "B=5 lands in bucket 2 (4..8): {json}");
        let doc = dls_core::json::parse(&json).unwrap();
        assert_eq!(doc.get("predict").unwrap().get("ok").unwrap().as_u64(), Some(1));
        assert_eq!(
            doc.get("queues").unwrap().as_arr().unwrap()[0].get("depth").unwrap().as_u64(),
            Some(3)
        );
        let classes = doc.get("classes").unwrap();
        let interactive = classes.get("interactive").unwrap();
        assert_eq!(interactive.get("slo_violation_rate").unwrap().as_f64(), Some(0.0));
        let batch = classes.get("batch").unwrap();
        assert_eq!(batch.get("slo_violations").unwrap().as_u64(), Some(2));
        assert_eq!(batch.get("slo_violation_rate").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn snapshot_json_exposes_fault_and_degradation_counters() {
        let scheduler = LayoutScheduler::new();
        let model = SvmModel::new(
            KernelKind::Linear,
            vec![SparseVec::new(4, vec![0], vec![1.0])],
            vec![1.0],
            0.0,
        );
        let mut registry = ModelRegistry::new();
        registry.insert(ServedModel::new("m", model, &scheduler));
        let stats = ServeStats::new();
        FaultCounters::bump(&stats.faults.conn_read_timeouts);
        FaultCounters::bump(&stats.faults.exec_panics);
        stats.degrade.batch_shed.fetch_add(5, Ordering::Relaxed);
        stats.degrade.brownout_active.store(1, Ordering::Relaxed);
        let doc = dls_core::json::parse(&stats.snapshot_json(&registry, &[])).unwrap();
        let faults = doc.get("faults").expect("faults section");
        assert_eq!(faults.get("conn_read_timeouts").unwrap().as_u64(), Some(1));
        assert_eq!(faults.get("exec_panics").unwrap().as_u64(), Some(1));
        assert_eq!(faults.get("injected").unwrap().as_u64(), Some(0));
        let degrade = doc.get("degradation").expect("degradation section");
        assert_eq!(degrade.get("batch_shed").unwrap().as_u64(), Some(5));
        assert_eq!(degrade.get("brownout_active").unwrap().as_u64(), Some(1));
        stats.reactor.open_connections.store(3, Ordering::Relaxed);
        stats.reactor.steals.fetch_add(2, Ordering::Relaxed);
        let doc = dls_core::json::parse(&stats.snapshot_json(&registry, &[])).unwrap();
        let reactor = doc.get("reactor").expect("reactor section");
        assert_eq!(reactor.get("open_connections").unwrap().as_u64(), Some(3));
        assert_eq!(reactor.get("steals").unwrap().as_u64(), Some(2));
        assert_eq!(reactor.get("pipelined_in_flight").unwrap().as_u64(), Some(0));
        // Every model reports its health rung.
        let models = doc.get("models").unwrap().as_arr().unwrap();
        assert_eq!(models[0].get("health").unwrap().as_str(), Some("healthy"));
        assert_eq!(models[0].get("panics").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn class_stats_violation_accounting() {
        let c = ClassStats::default();
        assert_eq!(c.slo_violation_rate(), 0.0, "no completions, no rate");
        c.record_ok(Duration::from_micros(50), false);
        c.record_ok(Duration::from_micros(900), true);
        c.record_timeout();
        c.record_busy_predicted();
        assert_eq!(c.completed(), 3);
        assert!((c.slo_violation_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.busy_predicted.load(Ordering::Relaxed), 1);
        assert_eq!(c.latency.count(), 2, "timeouts have no service latency");
    }

    #[test]
    fn aggregation_across_polls_never_double_counts() {
        let scheduler = LayoutScheduler::new();
        let model = SvmModel::new(
            KernelKind::Linear,
            vec![SparseVec::new(4, vec![0], vec![1.0])],
            vec![1.0],
            0.0,
        );
        let mut registry = ModelRegistry::new();
        registry.insert(ServedModel::new("m", model, &scheduler));
        let served = registry.get("m").unwrap().clone();
        let stats = ServeStats::new();
        let mut ws = PredictWorkspace::new();
        let x = [SparseVec::new(4, vec![1], vec![2.0])];
        for polls in 1..=3 {
            served.predict(&x, &mut ws);
            let agg = stats.aggregate_kernels(&registry);
            assert_eq!(agg.total_calls(), polls, "poll {polls}");
            // Idempotent when nothing new happened.
            assert_eq!(stats.aggregate_kernels(&registry).total_calls(), polls);
        }
    }
}
