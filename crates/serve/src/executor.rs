//! The SLO-aware batching executor: classed per-model queues drained by a
//! worker pool under a pluggable [`QueueDiscipline`], with predictive
//! admission control in front.
//!
//! This is where PR 3's blocked kernels get amortised across *clients*:
//! up to [`MAX_SMSV_BLOCK`] vectors from concurrently queued requests
//! share one traversal of the model's support-vector matrix. The pipeline
//! per request is
//!
//! ```text
//! conn thread ──submit──► admission ──try_push──► ClassedQueue
//!      │            (Busy: queue full, OR the        │
//!      │             estimator projects a miss)      │ discipline.decide
//!      │                                             ▼
//!      ◄──reply── worker: drain per DrainPlan, one smsv_block sweep
//! ```
//!
//! Deadlines resolve per request: an explicit `slo_us` wins, then the
//! legacy `deadline_ms`, then the per-class default. Requests still queued
//! past their deadline answer `TimedOut` without occupying kernel time;
//! answers delivered late count as SLO violations in the per-class stats.
//! Shutdown closes every queue (new pushes refuse with `ShuttingDown`),
//! lets workers drain what is queued — both classes — then joins them: no
//! accepted request is ever dropped without a response.
//!
//! **Sharding and work stealing.** Model lanes are sharded across the
//! worker pool (lane `i` is homed on worker `i % workers`): each worker
//! services its own shard first, so one hot model's long sweeps occupy at
//! most its home worker while every other model keeps its own. Only when a
//! worker's shard has nothing ready does it *steal* one ready lane from
//! another shard (counted in the stats `reactor.steals` gauge), so idle
//! capacity still flows to the hot model instead of spinning.

use crate::brownout::{BrownoutConfig, BrownoutController, BrownoutTransition};
use crate::discipline::{Decision, DisciplineCtx, QueueDiscipline, SloAware};
use crate::fault::{FaultAction, FaultInjector, FaultSite};
use crate::latency::{calibrate_model, AnalyticLatencyEstimator, TreeLatencyEstimator};
use crate::proto::{RequestClass, Response};
use crate::queue::{ClassedQueue, DrainPlan, JobMeta, PushError};
use crate::registry::{ModelHealth, ModelRegistry, ServedModel};
use crate::stats::{FaultCounters, ServeStats};
use dls_core::json::JsonValue;
use dls_core::{LayoutScheduler, SelectionStrategy};
use dls_learn::{featurize, NUM_FEATURES};
use dls_sparse::{Format, SparseVec, TripletMatrix, MAX_SMSV_BLOCK};
use dls_svm::PredictWorkspace;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Executor tuning knobs.
#[derive(Clone)]
pub struct ExecutorConfig {
    /// Worker threads draining the queues.
    pub workers: usize,
    /// Capacity of each per-model queue (and the schedule queue); the
    /// backpressure bound.
    pub queue_capacity: usize,
    /// Fraction of each queue's capacity reserved for interactive jobs
    /// (batch admission stops early by this share), clamped to `[0, 1]`.
    pub interactive_reserve: f64,
    /// How long a sweep may linger for more arrivals before launching.
    /// Zero disables coalescing across requests. Disciplines may cut the
    /// window short (or skip it) per their policy.
    pub gather: Duration,
    /// Cap on vectors coalesced into one blocked sweep. Values above
    /// [`MAX_SMSV_BLOCK`] still execute correctly (the kernels chunk
    /// internally) but add no further amortisation.
    pub max_block: usize,
    /// Default SLO per request class (indexed by [`RequestClass::index`]),
    /// applied to requests that carry neither `slo_us` nor `deadline_ms`.
    pub class_slo: [Duration; 2],
    /// The queue discipline deciding when and how to drain.
    pub discipline: Arc<dyn QueueDiscipline>,
    /// Calibrate a latency estimator at start-up and refuse requests whose
    /// projected completion already misses their deadline.
    pub predictive_admission: bool,
    /// Brown-out thresholds (overload-triggered partial degradation).
    pub brownout: BrownoutConfig,
    /// Fault injection for chaos runs; [`FaultInjector::none`] (the
    /// default) costs one branch per injection point.
    pub fault: FaultInjector,
    /// The online-learning feedback hub: every successful sweep is
    /// recorded as a training observation, and the hub's background
    /// retrainer hot-swaps improved selectors. `None` (the default) costs
    /// one branch per sweep.
    pub feedback: Option<Arc<crate::feedback::FeedbackHub>>,
}

impl std::fmt::Debug for ExecutorConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorConfig")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("interactive_reserve", &self.interactive_reserve)
            .field("gather", &self.gather)
            .field("max_block", &self.max_block)
            .field("class_slo", &self.class_slo)
            .field("discipline", &self.discipline.name())
            .field("predictive_admission", &self.predictive_admission)
            .field("brownout", &self.brownout)
            .field("fault", &self.fault)
            .field("feedback", &self.feedback.is_some())
            .finish()
    }
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 128,
            interactive_reserve: 0.25,
            gather: Duration::from_millis(1),
            max_block: MAX_SMSV_BLOCK,
            // Interactive keeps the old 5 s default deadline; batch
            // tolerates much more in exchange for throughput.
            class_slo: [Duration::from_secs(5), Duration::from_secs(30)],
            discipline: Arc::new(SloAware),
            predictive_admission: true,
            brownout: BrownoutConfig::default(),
            fault: FaultInjector::none(),
            feedback: None,
        }
    }
}

/// One queued predict request (scheduling metadata lives in [`JobMeta`]).
pub struct PredictJob {
    vectors: Vec<SparseVec>,
    reply: Sender<Response>,
}

/// One queued schedule request.
pub struct ScheduleJob {
    triplets: TripletMatrix,
    /// `None` uses the server's configured scheduler.
    strategy: Option<SelectionStrategy>,
    reply: Sender<Response>,
}

struct WakeSignal {
    seq: Mutex<u64>,
    cv: Condvar,
}

impl WakeSignal {
    fn notify(&self) {
        *self.seq.lock().expect("signal poisoned") += 1;
        self.cv.notify_all();
    }

    fn wait(&self, last_seen: u64, timeout: Duration) -> u64 {
        let mut seq = self.seq.lock().expect("signal poisoned");
        if *seq == last_seen {
            let (next, _) = self.cv.wait_timeout(seq, timeout).expect("signal poisoned");
            seq = next;
        }
        *seq
    }
}

/// One served model with its queue and latency fingerprint.
struct ModelLane {
    served: Arc<ServedModel>,
    queue: Arc<ClassedQueue<PredictJob>>,
    /// `featurize`d matrix fingerprint; `None` for constant models.
    feats: Option<[f64; NUM_FEATURES]>,
}

/// The batching executor. Shared between the acceptor side (submitting)
/// and its own worker pool (draining).
pub struct Executor {
    registry: Arc<ModelRegistry>,
    scheduler: Arc<LayoutScheduler>,
    stats: Arc<ServeStats>,
    config: ExecutorConfig,
    lanes: Vec<ModelLane>,
    model_index: HashMap<String, usize>,
    schedule_queue: Arc<ClassedQueue<ScheduleJob>>,
    estimator: Option<TreeLatencyEstimator>,
    /// The closed-form fallback admission uses while browned out.
    analytic: AnalyticLatencyEstimator,
    /// Overload state machine; the atomic mirror below keeps hot paths
    /// lock-free.
    brownout: Mutex<BrownoutController>,
    brownout_active: AtomicBool,
    wake: Arc<WakeSignal>,
    paused: AtomicBool,
    draining: AtomicBool,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Called after a worker answers any batch of jobs. The reactor front
    /// end installs a wake-fd ping here so completed replies are written
    /// back without polling.
    completion_hook: std::sync::OnceLock<Box<dyn Fn() + Send + Sync>>,
}

impl Executor {
    /// Builds the queues, calibrates the latency estimator (when
    /// predictive admission is on), and spawns the worker pool.
    pub fn start(
        registry: Arc<ModelRegistry>,
        scheduler: Arc<LayoutScheduler>,
        stats: Arc<ServeStats>,
        config: ExecutorConfig,
    ) -> Arc<Self> {
        let mut lanes = Vec::new();
        let mut model_index = HashMap::new();
        let mut samples = Vec::new();
        let mut ws = PredictWorkspace::new();
        for served in registry.iter() {
            model_index.insert(served.name().to_string(), lanes.len());
            if config.predictive_admission {
                samples.extend(calibrate_model(served, &mut ws));
            }
            lanes.push(ModelLane {
                served: Arc::clone(served),
                queue: Arc::new(ClassedQueue::new(
                    config.queue_capacity,
                    config.interactive_reserve,
                )),
                feats: served.matrix_features().map(featurize),
            });
        }
        let estimator =
            if config.predictive_admission { TreeLatencyEstimator::fit(&samples) } else { None };
        let exec = Arc::new(Self {
            registry,
            scheduler,
            stats,
            schedule_queue: Arc::new(ClassedQueue::new(config.queue_capacity, 0.0)),
            lanes,
            model_index,
            estimator,
            analytic: AnalyticLatencyEstimator::default(),
            brownout: Mutex::new(BrownoutController::new(config.brownout.clone())),
            brownout_active: AtomicBool::new(false),
            wake: Arc::new(WakeSignal { seq: Mutex::new(0), cv: Condvar::new() }),
            paused: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
            completion_hook: std::sync::OnceLock::new(),
            config,
        });
        let mut workers = exec.workers.lock().expect("executor poisoned");
        for k in 0..exec.config.workers.max(1) {
            let exec = Arc::clone(&exec);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("dls-serve-worker-{k}"))
                    .spawn(move || exec.worker_loop(k))
                    .expect("spawn worker"),
            );
        }
        drop(workers);
        if let Some(hub) = &exec.config.feedback {
            hub.spawn_retrainer();
        }
        exec
    }

    /// The online-learning feedback hub, when one is configured.
    pub fn feedback(&self) -> Option<&Arc<crate::feedback::FeedbackHub>> {
        self.config.feedback.as_ref()
    }

    /// The hosted models.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Live stats shared with the server front end.
    pub fn stats(&self) -> &Arc<ServeStats> {
        &self.stats
    }

    /// The active queue discipline.
    pub fn discipline(&self) -> &Arc<dyn QueueDiscipline> {
        &self.config.discipline
    }

    /// The fault injector threaded through the serving path (the server
    /// front end shares it for the connection I/O sites).
    pub fn fault(&self) -> &FaultInjector {
        &self.config.fault
    }

    /// Whether a latency estimator was calibrated (predictive admission
    /// can only fire when this is true).
    pub fn has_estimator(&self) -> bool {
        self.estimator.is_some()
    }

    /// Whether the brown-out controller is currently shedding load.
    pub fn is_browned_out(&self) -> bool {
        self.brownout_active.load(Ordering::Relaxed)
    }

    /// Fullest predict lane relative to its capacity, in `[0, 1]` — the
    /// pressure signal the brown-out controller watches.
    fn queue_pressure(&self) -> f64 {
        let cap = self.config.queue_capacity.max(1) as f64;
        self.lanes.iter().map(|l| l.queue.len()).max().unwrap_or(0) as f64 / cap
    }

    /// The gather window currently in force (shrunk while browned out:
    /// coalescing trades latency for throughput, and under overload that
    /// trade is backwards).
    fn effective_gather(&self) -> Duration {
        if self.brownout_active.load(Ordering::Relaxed) {
            self.config.gather / self.config.brownout.gather_divisor.max(1)
        } else {
            self.config.gather
        }
    }

    fn apply_brownout_transition(&self, t: BrownoutTransition) {
        match t {
            BrownoutTransition::None => {}
            BrownoutTransition::Entered => {
                self.brownout_active.store(true, Ordering::SeqCst);
                FaultCounters::bump(&self.stats.degrade.brownout_entries);
                self.stats.degrade.brownout_active.store(1, Ordering::Relaxed);
                self.stats.degrade.estimator_analytic.store(1, Ordering::Relaxed);
            }
            BrownoutTransition::Exited => {
                self.brownout_active.store(false, Ordering::SeqCst);
                FaultCounters::bump(&self.stats.degrade.brownout_exits);
                self.stats.degrade.brownout_active.store(0, Ordering::Relaxed);
                self.stats.degrade.estimator_analytic.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Feeds one interactive completion to the brown-out controller.
    fn brownout_observe(&self, violated: bool) {
        if !self.config.brownout.enabled {
            return;
        }
        let pressure = self.queue_pressure();
        let t = self.brownout.lock().expect("brownout poisoned").observe(
            violated,
            pressure,
            Instant::now(),
        );
        self.apply_brownout_transition(t);
    }

    /// Re-evaluates brown-out on queue pressure alone (called at submit,
    /// so a pressure spike engages shedding even while nothing completes).
    fn brownout_evaluate(&self) {
        if !self.config.brownout.enabled {
            return;
        }
        let pressure = self.queue_pressure();
        let t = self.brownout.lock().expect("brownout poisoned").evaluate(pressure, Instant::now());
        self.apply_brownout_transition(t);
    }

    /// Liveness and degradation summary for the `Health` endpoint: overall
    /// status, brown-out state, the estimator admission currently trusts,
    /// and every model's rung on the health ladder.
    pub fn health_json(&self) -> String {
        let models = self
            .registry
            .iter()
            .map(|served| {
                JsonValue::obj([
                    ("model", JsonValue::from(served.name())),
                    ("health", JsonValue::from(served.health().name())),
                    ("panics", JsonValue::from(served.panics())),
                ])
            })
            .collect::<Vec<_>>();
        let degraded = self.registry.iter().any(|s| s.health() != ModelHealth::Healthy);
        let brownout = self.is_browned_out();
        let status = if self.draining.load(Ordering::SeqCst) {
            "draining"
        } else if brownout || degraded {
            "degraded"
        } else {
            "ok"
        };
        let estimator = if brownout {
            "analytic"
        } else if self.estimator.is_some() {
            "tree"
        } else {
            "none"
        };
        JsonValue::obj([
            ("status", JsonValue::from(status)),
            ("brownout", JsonValue::from(brownout)),
            ("estimator", JsonValue::from(estimator)),
            ("queue_pressure", JsonValue::from(self.queue_pressure())),
            ("models", JsonValue::Arr(models)),
        ])
        .to_json()
    }

    /// Resolves a request's effective deadline: explicit SLO first, then
    /// the legacy millisecond deadline, then the class default.
    fn deadline(
        &self,
        now: Instant,
        class: RequestClass,
        slo_us: u32,
        deadline_ms: u32,
    ) -> Instant {
        if slo_us != 0 {
            now + Duration::from_micros(u64::from(slo_us))
        } else if deadline_ms != 0 {
            now + Duration::from_millis(u64::from(deadline_ms))
        } else {
            now + self.config.class_slo[class.index()]
        }
    }

    /// Predictive admission: projected completion is the gather window,
    /// plus the backlog that runs ahead of this request under the active
    /// discipline, plus the request's own sweep. `true` means "refuse
    /// now" — the request is already doomed to miss its deadline.
    fn projected_miss(
        &self,
        lane: &ModelLane,
        class: RequestClass,
        weight: usize,
        now: Instant,
        deadline: Instant,
    ) -> bool {
        let Some(feats) = &lane.feats else {
            return false;
        };
        let ahead = self.config.discipline.queue_ahead(&lane.queue.pending(), class);
        let total = ahead + weight;
        // While browned out, admission trusts the pessimistic closed-form
        // estimator instead of the learned tree.
        let block = self.lane_block(lane);
        let service = if self.brownout_active.load(Ordering::Relaxed) {
            self.analytic.predict_backlog(feats, total, block)
        } else {
            match &self.estimator {
                Some(est) => est.predict_backlog(feats, total, block),
                None => return false,
            }
        };
        now + self.effective_gather() + service > deadline
    }

    /// Enqueues a predict request. `Ok` carries the receiver the reply
    /// will arrive on; `Err` carries the immediate refusal to send back.
    pub fn submit_predict(
        &self,
        model: &str,
        vectors: Vec<SparseVec>,
        class: RequestClass,
        slo_us: u32,
        deadline_ms: u32,
    ) -> Result<Receiver<Response>, Response> {
        if let Some(action) = self.config.fault.decide(FaultSite::Registry) {
            FaultCounters::bump(&self.stats.faults.injected);
            match action {
                FaultAction::Delay(d) => std::thread::sleep(d),
                _ => {
                    FaultCounters::bump(&self.stats.faults.registry_unavailable);
                    self.stats.predict.record_error();
                    return Err(Response::Error(format!(
                        "model registry temporarily unavailable (retry): {model:?}"
                    )));
                }
            }
        }
        let Some(&idx) = self.model_index.get(model) else {
            self.stats.predict.record_error();
            return Err(Response::Error(format!("no such model: {model:?}")));
        };
        let lane = &self.lanes[idx];
        if lane.served.is_quarantined() {
            FaultCounters::bump(&self.stats.faults.registry_unavailable);
            self.stats.predict.record_error();
            return Err(Response::Error(format!(
                "model {model:?} is quarantined after repeated execution panics"
            )));
        }
        for v in &vectors {
            if let Err(msg) = lane.served.check_dim(v) {
                self.stats.predict.record_error();
                return Err(Response::Error(msg));
            }
        }
        // Re-check overload on every submission: a queue-pressure spike
        // must engage shedding even while nothing completes.
        self.brownout_evaluate();
        if class == RequestClass::Batch && self.brownout_active.load(Ordering::Relaxed) {
            FaultCounters::bump(&self.stats.degrade.batch_shed);
            self.stats.predict.record_busy();
            return Err(Response::Busy);
        }
        let now = Instant::now();
        let deadline = self.deadline(now, class, slo_us, deadline_ms);
        let weight = vectors.len().max(1);
        if self.config.predictive_admission
            && self.projected_miss(lane, class, weight, now, deadline)
        {
            self.stats.predict.record_busy();
            self.stats.class(class).record_busy_predicted();
            return Err(Response::Busy);
        }
        let (tx, rx) = std::sync::mpsc::channel();
        let job = PredictJob { vectors, reply: tx };
        match lane.queue.try_push(job, class, weight, now, deadline) {
            Ok(()) => {
                self.wake.notify();
                Ok(rx)
            }
            Err(PushError::Full(_)) => {
                self.stats.predict.record_busy();
                Err(Response::Busy)
            }
            Err(PushError::Closed(_)) => Err(Response::ShuttingDown),
        }
    }

    /// Enqueues a schedule request (always interactive-class bookkeeping;
    /// scheduling probes are operator actions, not batch scoring).
    pub fn submit_schedule(
        &self,
        triplets: TripletMatrix,
        strategy: Option<SelectionStrategy>,
        deadline_ms: u32,
    ) -> Result<Receiver<Response>, Response> {
        let now = Instant::now();
        let deadline = self.deadline(now, RequestClass::Interactive, 0, deadline_ms);
        let (tx, rx) = std::sync::mpsc::channel();
        let job = ScheduleJob { triplets, strategy, reply: tx };
        match self.schedule_queue.try_push(job, RequestClass::Interactive, 1, now, deadline) {
            Ok(()) => {
                self.wake.notify();
                Ok(rx)
            }
            Err(PushError::Full(_)) => {
                self.stats.schedule.record_busy();
                Err(Response::Busy)
            }
            Err(PushError::Closed(_)) => Err(Response::ShuttingDown),
        }
    }

    /// Current depth of every queue, for the stats snapshot.
    pub fn queue_depths(&self) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> = self
            .lanes
            .iter()
            .map(|lane| (format!("predict:{}", lane.served.name()), lane.queue.len()))
            .collect();
        out.push(("schedule".to_string(), self.schedule_queue.len()));
        out
    }

    /// Drain control: while paused, workers leave queues untouched, so
    /// requests pile up (and overflow to `Busy`). Used by operators to
    /// quiesce kernels and by the integration tests to make queue-full
    /// and scheduling-order behaviour deterministic.
    pub fn pause(&self, paused: bool) {
        self.paused.store(paused, Ordering::SeqCst);
        self.wake.notify();
    }

    /// Graceful drain: refuse new work, finish everything queued — both
    /// classes — then join the workers. Idempotent.
    pub fn shutdown(&self) {
        if let Some(hub) = &self.config.feedback {
            hub.stop();
        }
        self.draining.store(true, Ordering::SeqCst);
        self.paused.store(false, Ordering::SeqCst);
        for lane in &self.lanes {
            lane.queue.close();
        }
        self.schedule_queue.close();
        self.wake.notify();
        let workers = std::mem::take(&mut *self.workers.lock().expect("executor poisoned"));
        for w in workers {
            let _ = w.join();
        }
    }

    /// Installs the completion hook, called once after every answered
    /// batch. One-shot: the reactor front end sets it before serving.
    pub fn set_completion_hook(&self, hook: Box<dyn Fn() + Send + Sync>) {
        let _ = self.completion_hook.set(hook);
    }

    fn notify_completions(&self) {
        if let Some(hook) = self.completion_hook.get() {
            hook();
        }
    }

    /// Applies the discipline to one lane and runs any drained batch.
    /// Returns whether anything executed.
    fn service_lane(
        &self,
        lane: &ModelLane,
        draining: bool,
        next_wait: &mut Duration,
        ws: &mut PredictWorkspace,
    ) -> bool {
        let pending = lane.queue.pending();
        if pending.is_empty() {
            return false;
        }
        let plan = if draining {
            // Shutdown is a drain, not a drop: skip the discipline's
            // gather holds entirely.
            Some(DrainPlan::drain_all())
        } else {
            let ctx = DisciplineCtx {
                now: Instant::now(),
                gather: self.effective_gather(),
                max_block: self.lane_block(lane),
                est_block: self.est_block(lane),
            };
            match self.config.discipline.decide(&pending, &ctx) {
                Decision::Drain(plan) => Some(plan),
                Decision::Wait(d) => {
                    *next_wait = (*next_wait).min(d.max(Duration::from_micros(100)));
                    None
                }
            }
        };
        if let Some(plan) = plan {
            let batch = lane.queue.drain(&plan);
            if !batch.is_empty() {
                self.run_predict(&lane.served, batch, ws);
                self.notify_completions();
                return true;
            }
        }
        false
    }

    fn worker_loop(&self, worker: usize) {
        let shards = self.config.workers.max(1);
        let home: Vec<usize> = (0..self.lanes.len()).filter(|i| i % shards == worker).collect();
        let away: Vec<usize> = (0..self.lanes.len()).filter(|i| i % shards != worker).collect();
        let mut ws = PredictWorkspace::new();
        let mut seen = 0;
        loop {
            let mut worked = false;
            let mut next_wait = Duration::from_millis(2);
            if !self.paused.load(Ordering::SeqCst) {
                let draining = self.draining.load(Ordering::SeqCst);
                for &i in &home {
                    worked |= self.service_lane(&self.lanes[i], draining, &mut next_wait, &mut ws);
                }
                // Work stealing: only an otherwise-idle worker crosses
                // shards (every worker helps during the shutdown drain),
                // so a hot model soaks up spare capacity without taking
                // any other model's home worker.
                if !worked || draining {
                    for &i in &away {
                        if self.service_lane(&self.lanes[i], draining, &mut next_wait, &mut ws) {
                            FaultCounters::bump(&self.stats.reactor.steals);
                            worked = true;
                            if !draining {
                                break; // one steal per pass, then re-check home
                            }
                        }
                    }
                }
                for (_, job) in self.schedule_queue.drain(&DrainPlan {
                    order: crate::queue::DrainOrder::Arrival,
                    max_weight: 1,
                    max_batch_weight: 1,
                }) {
                    self.run_schedule(job);
                    self.notify_completions();
                    worked = true;
                }
            }
            if !worked {
                if self.draining.load(Ordering::SeqCst) && self.all_drained() {
                    return;
                }
                seen = self.wake.wait(seen, next_wait);
            }
        }
    }

    /// Predicted full-block sweep time for a lane (the SLO discipline's
    /// slack discount); zero without an estimator. Uses the analytic
    /// fallback while browned out.
    fn est_block(&self, lane: &ModelLane) -> Duration {
        let Some(feats) = &lane.feats else {
            return Duration::ZERO;
        };
        let block = self.lane_block(lane);
        if self.brownout_active.load(Ordering::Relaxed) {
            return self.analytic.predict_sweep(feats, block);
        }
        match &self.estimator {
            Some(est) => est.predict_sweep(feats, block),
            None => Duration::ZERO,
        }
    }

    /// The coalescing cap for one lane: the scheduler's tuned block for the
    /// model's chosen format (when a selection report exists), clamped into
    /// `1..=MAX_SMSV_BLOCK` and never above the configured `max_block`.
    /// Constant models — no matrix, no report — fall back to the config cap.
    fn lane_block(&self, lane: &ModelLane) -> usize {
        lane.served
            .report()
            .map(|r| r.block.clamp(1, MAX_SMSV_BLOCK))
            .unwrap_or(MAX_SMSV_BLOCK)
            .min(self.config.max_block)
            .max(1)
    }

    fn all_drained(&self) -> bool {
        self.lanes.iter().all(|lane| lane.queue.is_empty()) && self.schedule_queue.is_empty()
    }

    /// Executes one drained sweep: expired jobs answer `TimedOut`; the
    /// rest share one blocked traversal of the model's support matrix and
    /// are split back per request, with per-class SLO accounting. Kernel
    /// execution runs under `catch_unwind`: a panicking model answers
    /// every live job with a typed error, walks the model's health ladder
    /// (degrade → quarantine), and never takes the worker down.
    fn run_predict(
        &self,
        served: &ServedModel,
        batch: Vec<(JobMeta, PredictJob)>,
        ws: &mut PredictWorkspace,
    ) {
        let now = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for (meta, job) in batch {
            if meta.deadline < now {
                self.stats.predict.record_timeout();
                self.stats.class(meta.class).record_timeout();
                if meta.class == RequestClass::Interactive {
                    self.brownout_observe(true);
                }
                let _ = job.reply.send(Response::TimedOut);
            } else {
                live.push((meta, job));
            }
        }
        if live.is_empty() {
            return;
        }
        let mut vectors = Vec::with_capacity(live.iter().map(|(_, j)| j.vectors.len()).sum());
        let counts: Vec<usize> = live
            .iter_mut()
            .map(|(_, job)| {
                let n = job.vectors.len();
                vectors.append(&mut job.vectors);
                n
            })
            .collect();
        let exec_fault = self.config.fault.decide(FaultSite::Exec);
        if exec_fault.is_some() {
            FaultCounters::bump(&self.stats.faults.injected);
        }
        let sweep_start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            match exec_fault {
                Some(FaultAction::Delay(d)) => std::thread::sleep(d),
                Some(FaultAction::Panic) => panic!("injected model execution panic"),
                _ => {}
            }
            served.predict(&vectors, &mut *ws)
        }));
        let values = match result {
            Ok(values) => values,
            Err(_) => {
                // The workspace may hold partial state from the aborted
                // sweep; rebuild it before the next batch.
                *ws = PredictWorkspace::new();
                FaultCounters::bump(&self.stats.faults.exec_panics);
                let rung = served.note_panic();
                match rung {
                    ModelHealth::Degraded if served.panics() == 1 => {
                        FaultCounters::bump(&self.stats.degrade.models_degraded);
                    }
                    ModelHealth::Quarantined
                        if served.panics() == crate::registry::QUARANTINE_PANICS =>
                    {
                        FaultCounters::bump(&self.stats.degrade.models_quarantined);
                    }
                    _ => {}
                }
                let msg = format!(
                    "model {:?} execution panicked (now {}); retry against the fallback layout",
                    served.name(),
                    rung.name()
                );
                for (_, job) in &live {
                    self.stats.predict.record_error();
                    let _ = job.reply.send(Response::Error(msg.clone()));
                }
                return;
            }
        };
        let mut offset = 0;
        let done = Instant::now();
        // Telemetry training log: one observation per executed sweep —
        // the matrix's influencing parameters, the format that actually
        // served (fallback layout while degraded), the tuned block, the
        // coalesced batch size, and the measured sweep time.
        if let Some(hub) = &self.config.feedback {
            if let (Some(feats), Some(format)) = (served.matrix_features(), served.serving_format())
            {
                let nanos = done.duration_since(sweep_start).as_nanos().min(u64::MAX as u128);
                let block = served.report().map(|r| r.block).unwrap_or(1);
                hub.record_sweep(feats, format, block, vectors.len(), nanos as u64);
            }
        }
        for ((meta, job), n) in live.iter().zip(counts) {
            let slice = values[offset..offset + n].to_vec();
            offset += n;
            let latency = done.duration_since(meta.enqueued);
            self.stats.predict.record_ok(latency);
            let violated = done > meta.deadline;
            self.stats.class(meta.class).record_ok(latency, violated);
            if meta.class == RequestClass::Interactive {
                self.brownout_observe(violated);
            }
            let _ = job.reply.send(Response::Predictions(slice));
        }
    }

    fn run_schedule(&self, job: ScheduleJob) {
        let start = Instant::now();
        let report = match job.strategy {
            Some(strategy) => LayoutScheduler::with_strategy(strategy).select_only(&job.triplets),
            None => self.scheduler.select_only(&job.triplets),
        };
        self.stats.record_decision(report.chosen);
        let resp = Response::Scheduled {
            format: report.chosen.name().to_string(),
            reason: report.reason.clone(),
            scores: report.scores.iter().map(|s| (s.format.name().to_string(), s.score)).collect(),
        };
        self.stats.schedule.record_ok(start.elapsed());
        let _ = job.reply.send(resp);
    }
}

/// Parses a wire strategy name. Empty selects the server default.
pub fn parse_strategy(name: &str) -> Result<Option<SelectionStrategy>, String> {
    Ok(Some(match name {
        "" => return Ok(None),
        "rule" => SelectionStrategy::RuleBased,
        "rule-host" => SelectionStrategy::RuleBasedHost,
        "cost" => SelectionStrategy::CostModel,
        "empirical" => SelectionStrategy::Empirical,
        f => SelectionStrategy::Fixed(
            f.parse::<Format>().map_err(|_| format!("unknown strategy or format: {f}"))?,
        ),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discipline::{Fifo, StrictPriority};
    use crate::registry::ServedModel;
    use dls_svm::{KernelKind, SvmModel};

    fn small_registry() -> Arc<ModelRegistry> {
        let scheduler = LayoutScheduler::new();
        let svs: Vec<SparseVec> =
            (0..3).map(|i| SparseVec::new(6, vec![i, i + 3], vec![1.0, -0.5])).collect();
        let model = SvmModel::new(KernelKind::Linear, svs, vec![1.0, -1.0, 0.5], 0.1);
        Arc::new(ModelRegistry::new().with(ServedModel::new("toy", model, &scheduler)))
    }

    fn start(config: ExecutorConfig) -> Arc<Executor> {
        Executor::start(
            small_registry(),
            Arc::new(LayoutScheduler::new()),
            Arc::new(ServeStats::new()),
            config,
        )
    }

    fn submit_interactive(
        exec: &Executor,
        vectors: Vec<SparseVec>,
        deadline_ms: u32,
    ) -> Result<Receiver<Response>, Response> {
        exec.submit_predict("toy", vectors, RequestClass::Interactive, 0, deadline_ms)
    }

    #[test]
    fn predict_round_trip_through_the_pool() {
        let exec = start(ExecutorConfig { gather: Duration::ZERO, ..Default::default() });
        let x = SparseVec::new(6, vec![0], vec![2.0]);
        let rx = submit_interactive(&exec, vec![x.clone()], 0).unwrap();
        let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let served = exec.registry().get("toy").unwrap().clone();
        let want = served.model().decision_function(&x);
        assert_eq!(resp, Response::Predictions(vec![want]));
        assert_eq!(exec.stats().class(RequestClass::Interactive).completed(), 1);
        exec.shutdown();
    }

    #[test]
    fn unknown_model_and_bad_dims_are_immediate_errors() {
        let exec = start(ExecutorConfig::default());
        assert!(matches!(
            exec.submit_predict("missing", vec![], RequestClass::Interactive, 0, 0),
            Err(Response::Error(_))
        ));
        assert!(matches!(
            submit_interactive(&exec, vec![SparseVec::zeros(7)], 0),
            Err(Response::Error(_))
        ));
        exec.shutdown();
    }

    #[test]
    fn paused_queues_fill_then_refuse_with_busy() {
        let exec = start(ExecutorConfig {
            queue_capacity: 2,
            interactive_reserve: 0.0,
            gather: Duration::ZERO,
            ..Default::default()
        });
        exec.pause(true);
        let x = || vec![SparseVec::new(6, vec![1], vec![1.0])];
        let rx1 = submit_interactive(&exec, x(), 0).unwrap();
        let rx2 = submit_interactive(&exec, x(), 0).unwrap();
        assert_eq!(submit_interactive(&exec, x(), 0).unwrap_err(), Response::Busy);
        assert_eq!(exec.queue_depths()[0].1, 2);
        exec.pause(false);
        assert!(matches!(rx1.recv_timeout(Duration::from_secs(5)), Ok(Response::Predictions(_))));
        assert!(matches!(rx2.recv_timeout(Duration::from_secs(5)), Ok(Response::Predictions(_))));
        assert_eq!(exec.stats().predict.busy.load(Ordering::Relaxed), 1);
        exec.shutdown();
    }

    #[test]
    fn batch_backlog_cannot_starve_interactive_submission() {
        let exec = start(ExecutorConfig {
            queue_capacity: 4,
            interactive_reserve: 0.25,
            gather: Duration::ZERO,
            predictive_admission: false,
            ..Default::default()
        });
        exec.pause(true);
        let x = || vec![SparseVec::new(6, vec![1], vec![1.0])];
        let mut rxs = Vec::new();
        for _ in 0..3 {
            rxs.push(exec.submit_predict("toy", x(), RequestClass::Batch, 0, 0).unwrap());
        }
        // The batch share (3 of 4) is exhausted …
        assert_eq!(
            exec.submit_predict("toy", x(), RequestClass::Batch, 0, 0).unwrap_err(),
            Response::Busy
        );
        // … but the interactive reserve still admits.
        rxs.push(submit_interactive(&exec, x(), 0).unwrap());
        exec.pause(false);
        for rx in rxs {
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(5)),
                Ok(Response::Predictions(_))
            ));
        }
        exec.shutdown();
    }

    #[test]
    fn expired_deadlines_get_timed_out_not_executed() {
        let exec = start(ExecutorConfig { gather: Duration::ZERO, ..Default::default() });
        exec.pause(true);
        let rx = submit_interactive(&exec, vec![SparseVec::new(6, vec![0], vec![1.0])], 1).unwrap();
        std::thread::sleep(Duration::from_millis(10)); // let the 1 ms deadline lapse
        exec.pause(false);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), Response::TimedOut);
        assert_eq!(exec.stats().predict.timed_out.load(Ordering::Relaxed), 1);
        let class = exec.stats().class(RequestClass::Interactive);
        assert_eq!(class.timed_out.load(Ordering::Relaxed), 1);
        assert_eq!(class.slo_violations.load(Ordering::Relaxed), 1);
        exec.shutdown();
    }

    #[test]
    fn paused_batch_coalesces_into_one_block() {
        let exec = start(ExecutorConfig { gather: Duration::ZERO, ..Default::default() });
        exec.pause(true);
        let rxs: Vec<_> = (0..5)
            .map(|i| {
                submit_interactive(&exec, vec![SparseVec::new(6, vec![i], vec![1.0])], 0).unwrap()
            })
            .collect();
        exec.pause(false);
        for rx in rxs {
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(5)),
                Ok(Response::Predictions(_))
            ));
        }
        let served = exec.registry().get("toy").unwrap().clone();
        assert!(
            served.counters().snapshot().multi_vector_blocks() >= 1,
            "5 queued singles should form at least one multi-vector block"
        );
        exec.shutdown();
    }

    /// The coalescing window clamps to the scheduler's tuned block: with a
    /// selector reporting `block = 2`, five queued singles drain as sweeps
    /// of at most two vectors — the block histogram stays below bucket 2
    /// (B >= 4) while pairs still coalesce.
    #[test]
    fn coalescing_clamps_to_the_tuned_block() {
        #[derive(Debug)]
        struct TinyBlock;
        impl dls_core::FormatSelector for TinyBlock {
            fn select(
                &self,
                t: &TripletMatrix,
                f: &dls_sparse::MatrixFeatures,
            ) -> dls_core::SelectionReport {
                let mut r = dls_core::RuleBasedSelector::default().select(t, f);
                r.block = 2;
                r
            }
        }
        let scheduler = LayoutScheduler::with_selector(TinyBlock);
        let svs: Vec<SparseVec> =
            (0..3).map(|i| SparseVec::new(6, vec![i, i + 3], vec![1.0, -0.5])).collect();
        let model = SvmModel::new(KernelKind::Linear, svs, vec![1.0, -1.0, 0.5], 0.1);
        let registry =
            Arc::new(ModelRegistry::new().with(ServedModel::new("toy", model, &scheduler)));
        // Predictive admission off: calibration sweeps would otherwise put
        // full-size probe batches into the histogram being pinned.
        let exec = Executor::start(
            registry,
            Arc::new(LayoutScheduler::new()),
            Arc::new(ServeStats::new()),
            ExecutorConfig {
                gather: Duration::ZERO,
                predictive_admission: false,
                ..Default::default()
            },
        );
        let served = exec.registry().get("toy").unwrap().clone();
        assert_eq!(served.report().map(|r| r.block), Some(2), "tuned block reaches the lane");
        exec.pause(true);
        let rxs: Vec<_> = (0..5)
            .map(|i| {
                submit_interactive(&exec, vec![SparseVec::new(6, vec![i], vec![1.0])], 0).unwrap()
            })
            .collect();
        exec.pause(false);
        for rx in rxs {
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(5)),
                Ok(Response::Predictions(_))
            ));
        }
        let snap = served.counters().snapshot();
        assert!(snap.multi_vector_blocks() >= 1, "pairs still coalesce under the cap");
        for (b, &n) in snap.block_hist.iter().enumerate().skip(2) {
            assert_eq!(n, 0, "bucket {b} must stay empty under tuned block 2");
        }
        exec.shutdown();
    }

    /// Satellite test (a): under a batch flood, the SLO-aware discipline
    /// answers the late-arriving interactive request before the earlier
    /// batch jobs, while FIFO answers it last. With one worker and a
    /// paused-then-released executor the completion *order* is
    /// deterministic, so the pin needs no cross-run timing comparisons.
    #[test]
    fn interactive_jumps_the_batch_flood_under_slo_but_not_fifo() {
        let flood = |discipline: Arc<dyn QueueDiscipline>| {
            let exec = start(ExecutorConfig {
                workers: 1,
                max_block: 2,
                gather: Duration::ZERO,
                discipline,
                predictive_admission: false,
                ..Default::default()
            });
            exec.pause(true);
            let batch_rxs: Vec<_> = (0..3)
                .map(|_| {
                    let vs = vec![
                        SparseVec::new(6, vec![0], vec![1.0]),
                        SparseVec::new(6, vec![1], vec![1.0]),
                    ];
                    exec.submit_predict("toy", vs, RequestClass::Batch, 0, 0).unwrap()
                })
                .collect();
            let int_rx =
                submit_interactive(&exec, vec![SparseVec::new(6, vec![2], vec![1.0])], 0).unwrap();
            exec.pause(false);
            (exec, batch_rxs, int_rx)
        };

        // FIFO: by the time the interactive reply exists, every batch
        // reply (all enqueued earlier) must already have been sent.
        let (exec, batch_rxs, int_rx) = flood(Arc::new(Fifo));
        assert!(matches!(
            int_rx.recv_timeout(Duration::from_secs(5)),
            Ok(Response::Predictions(_))
        ));
        for rx in &batch_rxs {
            assert!(
                matches!(rx.try_recv(), Ok(Response::Predictions(_))),
                "fifo left batch behind"
            );
        }
        exec.shutdown();

        // SLO-aware: by the time the *last* batch reply exists, the
        // interactive reply must already have been sent.
        let (exec, batch_rxs, int_rx) = flood(Arc::new(SloAware));
        for rx in &batch_rxs {
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(5)),
                Ok(Response::Predictions(_))
            ));
        }
        assert!(
            matches!(int_rx.try_recv(), Ok(Response::Predictions(_))),
            "slo discipline should answer interactive before the batch flood"
        );
        exec.shutdown();

        // Strict priority behaves like SLO-aware for ordering.
        let (exec, batch_rxs, int_rx) = flood(Arc::new(StrictPriority));
        for rx in &batch_rxs {
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(5)),
                Ok(Response::Predictions(_))
            ));
        }
        assert!(matches!(int_rx.try_recv(), Ok(Response::Predictions(_))));
        exec.shutdown();
    }

    /// Satellite test (b): predictive admission refuses a request whose
    /// projected completion (gather + predicted sweep) already misses its
    /// microsecond-scale SLO, before it ever queues.
    #[test]
    fn predictive_admission_refuses_doomed_requests() {
        let exec = start(ExecutorConfig::default());
        assert!(exec.has_estimator(), "calibration should fit an estimator for toy");
        // 1 µs SLO: the 1 ms gather window alone dooms it.
        let resp = exec
            .submit_predict(
                "toy",
                vec![SparseVec::new(6, vec![0], vec![1.0])],
                RequestClass::Interactive,
                1,
                0,
            )
            .unwrap_err();
        assert_eq!(resp, Response::Busy);
        let class = exec.stats().class(RequestClass::Interactive);
        assert_eq!(class.busy_predicted.load(Ordering::Relaxed), 1);
        assert_eq!(exec.stats().predict.busy.load(Ordering::Relaxed), 1);
        // A comfortable SLO passes admission and completes on time.
        let rx = exec
            .submit_predict(
                "toy",
                vec![SparseVec::new(6, vec![0], vec![1.0])],
                RequestClass::Interactive,
                2_000_000,
                0,
            )
            .unwrap();
        assert!(matches!(rx.recv_timeout(Duration::from_secs(5)), Ok(Response::Predictions(_))));
        exec.shutdown();
    }

    #[test]
    fn schedule_requests_report_the_chosen_format() {
        let exec = start(ExecutorConfig::default());
        let mut t = TripletMatrix::with_capacity(4, 4, 4);
        for i in 0..4 {
            t.push(i, i, 1.0);
        }
        // Default scheduler: some valid format with a populated scoreboard.
        let rx = exec.submit_schedule(t.clone(), None, 0).unwrap();
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Response::Scheduled { format, scores, .. } => {
                assert!(format.parse::<Format>().is_ok(), "unknown format {format:?}");
                assert!(!scores.is_empty());
            }
            other => panic!("unexpected response {other:?}"),
        }
        // A fixed strategy pins the outcome and the decision counter.
        let rx = exec.submit_schedule(t, Some(SelectionStrategy::Fixed(Format::Dia)), 0).unwrap();
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Response::Scheduled { format, .. } => assert_eq!(format, "DIA"),
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(exec.stats().decisions()[dls_sparse::telemetry::format_index(Format::Dia)], 1);
        exec.shutdown();
    }

    /// Satellite test (c): shutdown still drains rather than drops — for
    /// *both* classes.
    #[test]
    fn shutdown_drains_queued_work_per_class_before_refusing() {
        let exec = start(ExecutorConfig { gather: Duration::ZERO, ..Default::default() });
        exec.pause(true);
        let rx_int =
            submit_interactive(&exec, vec![SparseVec::new(6, vec![2], vec![1.0])], 0).unwrap();
        let rx_batch = exec
            .submit_predict(
                "toy",
                vec![SparseVec::new(6, vec![3], vec![1.0])],
                RequestClass::Batch,
                0,
                0,
            )
            .unwrap();
        // Shutdown un-pauses, drains, then joins: both queued jobs complete.
        exec.shutdown();
        assert!(matches!(rx_int.try_recv(), Ok(Response::Predictions(_))));
        assert!(matches!(rx_batch.try_recv(), Ok(Response::Predictions(_))));
        assert_eq!(exec.stats().class(RequestClass::Interactive).completed(), 1);
        assert_eq!(exec.stats().class(RequestClass::Batch).completed(), 1);
        assert_eq!(
            submit_interactive(&exec, vec![SparseVec::new(6, vec![2], vec![1.0])], 0).unwrap_err(),
            Response::ShuttingDown
        );
    }

    #[test]
    fn strategy_names_parse() {
        assert_eq!(parse_strategy("").unwrap(), None);
        assert_eq!(parse_strategy("cost").unwrap(), Some(SelectionStrategy::CostModel));
        assert!(matches!(
            parse_strategy("CSR").unwrap(),
            Some(SelectionStrategy::Fixed(Format::Csr))
        ));
        assert!(parse_strategy("bogus").is_err());
    }
}
