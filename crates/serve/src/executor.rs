//! The batching executor: per-model queues drained by a worker pool that
//! coalesces pending predict requests into multi-vector `smsv_block`
//! sweeps.
//!
//! This is where PR 3's blocked kernels get amortised across *clients*
//! instead of SMO iterations: up to [`MAX_SMSV_BLOCK`] vectors from
//! concurrently queued requests share one traversal of the model's
//! support-vector matrix. The pipeline per request is
//!
//! ```text
//! conn thread ──try_push──► BoundedQueue ──pop_batch──► worker ──reply──► conn thread
//!      │ (Busy if full)         (gather window             │
//!      │                         coalesces B jobs)         │ one smsv_block(B vectors)
//! ```
//!
//! Deadlines are enforced at dequeue: a request that waited past its
//! deadline is answered `TimedOut` without occupying kernel time.
//! Shutdown closes every queue (new pushes are refused with
//! `ShuttingDown`), lets workers drain what is queued, then joins them —
//! no accepted request is ever dropped without a response.

use crate::proto::Response;
use crate::queue::{BoundedQueue, PushError};
use crate::registry::{ModelRegistry, ServedModel};
use crate::stats::ServeStats;
use dls_core::{LayoutScheduler, SelectionStrategy};
use dls_sparse::{Format, SparseVec, TripletMatrix, MAX_SMSV_BLOCK};
use dls_svm::PredictWorkspace;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Executor tuning knobs.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Worker threads draining the queues.
    pub workers: usize,
    /// Capacity of each per-model queue (and the schedule queue); the
    /// backpressure bound.
    pub queue_capacity: usize,
    /// How long a worker holding at least one job lingers for more
    /// arrivals before launching the block. Zero disables coalescing
    /// across requests (each drain takes what is already there).
    pub gather: Duration,
    /// Cap on vectors coalesced into one blocked sweep. Values above
    /// [`MAX_SMSV_BLOCK`] still execute correctly (the kernels chunk
    /// internally) but add no further amortisation.
    pub max_block: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 128,
            gather: Duration::from_millis(1),
            max_block: MAX_SMSV_BLOCK,
            default_deadline: Duration::from_secs(5),
        }
    }
}

/// One queued predict request.
pub struct PredictJob {
    vectors: Vec<SparseVec>,
    deadline: Instant,
    enqueued: Instant,
    reply: Sender<Response>,
}

/// One queued schedule request.
pub struct ScheduleJob {
    triplets: TripletMatrix,
    /// `None` uses the server's configured scheduler.
    strategy: Option<SelectionStrategy>,
    deadline: Instant,
    enqueued: Instant,
    reply: Sender<Response>,
}

struct WakeSignal {
    seq: Mutex<u64>,
    cv: Condvar,
}

impl WakeSignal {
    fn notify(&self) {
        *self.seq.lock().expect("signal poisoned") += 1;
        self.cv.notify_all();
    }

    fn wait(&self, last_seen: u64, timeout: Duration) -> u64 {
        let mut seq = self.seq.lock().expect("signal poisoned");
        if *seq == last_seen {
            let (next, _) = self.cv.wait_timeout(seq, timeout).expect("signal poisoned");
            seq = next;
        }
        *seq
    }
}

/// The batching executor. Shared between the acceptor side (submitting)
/// and its own worker pool (draining).
pub struct Executor {
    registry: Arc<ModelRegistry>,
    scheduler: Arc<LayoutScheduler>,
    stats: Arc<ServeStats>,
    config: ExecutorConfig,
    /// Per-model predict queues, parallel to `model_index`.
    predict_queues: Vec<(Arc<ServedModel>, Arc<BoundedQueue<PredictJob>>)>,
    model_index: HashMap<String, usize>,
    schedule_queue: Arc<BoundedQueue<ScheduleJob>>,
    wake: Arc<WakeSignal>,
    paused: AtomicBool,
    draining: AtomicBool,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Executor {
    /// Builds the queues and spawns the worker pool.
    pub fn start(
        registry: Arc<ModelRegistry>,
        scheduler: Arc<LayoutScheduler>,
        stats: Arc<ServeStats>,
        config: ExecutorConfig,
    ) -> Arc<Self> {
        let mut predict_queues = Vec::new();
        let mut model_index = HashMap::new();
        for served in registry.iter() {
            model_index.insert(served.name().to_string(), predict_queues.len());
            predict_queues
                .push((Arc::clone(served), Arc::new(BoundedQueue::new(config.queue_capacity))));
        }
        let exec = Arc::new(Self {
            registry,
            scheduler,
            stats,
            schedule_queue: Arc::new(BoundedQueue::new(config.queue_capacity)),
            predict_queues,
            model_index,
            wake: Arc::new(WakeSignal { seq: Mutex::new(0), cv: Condvar::new() }),
            paused: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
            config,
        });
        let mut workers = exec.workers.lock().expect("executor poisoned");
        for k in 0..exec.config.workers.max(1) {
            let exec = Arc::clone(&exec);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("dls-serve-worker-{k}"))
                    .spawn(move || exec.worker_loop())
                    .expect("spawn worker"),
            );
        }
        drop(workers);
        exec
    }

    /// The hosted models.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Live stats shared with the server front end.
    pub fn stats(&self) -> &Arc<ServeStats> {
        &self.stats
    }

    /// Resolves a request deadline: `0` means the configured default.
    fn deadline(&self, now: Instant, deadline_ms: u32) -> Instant {
        if deadline_ms == 0 {
            now + self.config.default_deadline
        } else {
            now + Duration::from_millis(u64::from(deadline_ms))
        }
    }

    /// Enqueues a predict request. `Ok` carries the receiver the reply
    /// will arrive on; `Err` carries the immediate refusal to send back.
    pub fn submit_predict(
        &self,
        model: &str,
        vectors: Vec<SparseVec>,
        deadline_ms: u32,
    ) -> Result<Receiver<Response>, Response> {
        let Some(&idx) = self.model_index.get(model) else {
            self.stats.predict.record_error();
            return Err(Response::Error(format!("no such model: {model:?}")));
        };
        let (served, queue) = &self.predict_queues[idx];
        for v in &vectors {
            if let Err(msg) = served.check_dim(v) {
                self.stats.predict.record_error();
                return Err(Response::Error(msg));
            }
        }
        let now = Instant::now();
        let (tx, rx) = std::sync::mpsc::channel();
        let job = PredictJob {
            vectors,
            deadline: self.deadline(now, deadline_ms),
            enqueued: now,
            reply: tx,
        };
        match queue.try_push(job) {
            Ok(()) => {
                self.wake.notify();
                Ok(rx)
            }
            Err(PushError::Full(_)) => {
                self.stats.predict.record_busy();
                Err(Response::Busy)
            }
            Err(PushError::Closed(_)) => Err(Response::ShuttingDown),
        }
    }

    /// Enqueues a schedule request.
    pub fn submit_schedule(
        &self,
        triplets: TripletMatrix,
        strategy: Option<SelectionStrategy>,
        deadline_ms: u32,
    ) -> Result<Receiver<Response>, Response> {
        let now = Instant::now();
        let (tx, rx) = std::sync::mpsc::channel();
        let job = ScheduleJob {
            triplets,
            strategy,
            deadline: self.deadline(now, deadline_ms),
            enqueued: now,
            reply: tx,
        };
        match self.schedule_queue.try_push(job) {
            Ok(()) => {
                self.wake.notify();
                Ok(rx)
            }
            Err(PushError::Full(_)) => {
                self.stats.schedule.record_busy();
                Err(Response::Busy)
            }
            Err(PushError::Closed(_)) => Err(Response::ShuttingDown),
        }
    }

    /// Current depth of every queue, for the stats snapshot.
    pub fn queue_depths(&self) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> = self
            .predict_queues
            .iter()
            .map(|(m, q)| (format!("predict:{}", m.name()), q.len()))
            .collect();
        out.push(("schedule".to_string(), self.schedule_queue.len()));
        out
    }

    /// Drain control: while paused, workers leave queues untouched, so
    /// requests pile up (and overflow to `Busy`). Used by operators to
    /// quiesce kernels and by the integration tests to make queue-full
    /// and coalescing behaviour deterministic.
    pub fn pause(&self, paused: bool) {
        self.paused.store(paused, Ordering::SeqCst);
        self.wake.notify();
    }

    /// Graceful drain: refuse new work, finish everything queued, join
    /// the workers. Idempotent.
    pub fn shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.paused.store(false, Ordering::SeqCst);
        for (_, q) in &self.predict_queues {
            q.close();
        }
        self.schedule_queue.close();
        self.wake.notify();
        let workers = std::mem::take(&mut *self.workers.lock().expect("executor poisoned"));
        for w in workers {
            let _ = w.join();
        }
    }

    fn worker_loop(&self) {
        let mut ws = PredictWorkspace::new();
        let mut seen = 0;
        loop {
            let mut worked = false;
            if !self.paused.load(Ordering::SeqCst) {
                for (served, queue) in &self.predict_queues {
                    let batch =
                        queue.try_pop_batch(self.config.max_block, self.config.gather, |j| {
                            j.vectors.len()
                        });
                    if !batch.is_empty() {
                        self.run_predict(served, batch, &mut ws);
                        worked = true;
                    }
                }
                let sched = self.schedule_queue.try_pop_batch(1, Duration::ZERO, |_| 1);
                for job in sched {
                    self.run_schedule(job);
                    worked = true;
                }
            }
            if !worked {
                if self.draining.load(Ordering::SeqCst) && self.all_drained() {
                    return;
                }
                seen = self.wake.wait(seen, Duration::from_millis(2));
            }
        }
    }

    fn all_drained(&self) -> bool {
        self.predict_queues.iter().all(|(_, q)| q.is_empty()) && self.schedule_queue.is_empty()
    }

    /// Executes one coalesced predict batch: expired jobs answer
    /// `TimedOut`; the rest share one blocked sweep of the model's
    /// support matrix and are split back per request.
    fn run_predict(&self, served: &ServedModel, batch: Vec<PredictJob>, ws: &mut PredictWorkspace) {
        let now = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for job in batch {
            if job.deadline < now {
                self.stats.predict.record_timeout();
                let _ = job.reply.send(Response::TimedOut);
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            return;
        }
        let mut vectors = Vec::with_capacity(live.iter().map(|j| j.vectors.len()).sum());
        let counts: Vec<usize> = live
            .iter_mut()
            .map(|job| {
                let n = job.vectors.len();
                vectors.append(&mut job.vectors);
                n
            })
            .collect();
        let values = served.predict(&vectors, ws);
        let mut offset = 0;
        let done = Instant::now();
        for (job, n) in live.iter().zip(counts) {
            let slice = values[offset..offset + n].to_vec();
            offset += n;
            self.stats.predict.record_ok(done.duration_since(job.enqueued));
            let _ = job.reply.send(Response::Predictions(slice));
        }
    }

    fn run_schedule(&self, job: ScheduleJob) {
        let now = Instant::now();
        if job.deadline < now {
            self.stats.schedule.record_timeout();
            let _ = job.reply.send(Response::TimedOut);
            return;
        }
        let report = match job.strategy {
            Some(strategy) => LayoutScheduler::with_strategy(strategy).select_only(&job.triplets),
            None => self.scheduler.select_only(&job.triplets),
        };
        self.stats.record_decision(report.chosen);
        let resp = Response::Scheduled {
            format: report.chosen.name().to_string(),
            reason: report.reason.clone(),
            scores: report.scores.iter().map(|s| (s.format.name().to_string(), s.score)).collect(),
        };
        self.stats.schedule.record_ok(Instant::now().duration_since(job.enqueued));
        let _ = job.reply.send(resp);
    }
}

/// Parses a wire strategy name. Empty selects the server default.
pub fn parse_strategy(name: &str) -> Result<Option<SelectionStrategy>, String> {
    Ok(Some(match name {
        "" => return Ok(None),
        "rule" => SelectionStrategy::RuleBased,
        "rule-host" => SelectionStrategy::RuleBasedHost,
        "cost" => SelectionStrategy::CostModel,
        "empirical" => SelectionStrategy::Empirical,
        f => SelectionStrategy::Fixed(
            f.parse::<Format>().map_err(|_| format!("unknown strategy or format: {f}"))?,
        ),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ServedModel;
    use dls_svm::{KernelKind, SvmModel};

    fn small_registry() -> Arc<ModelRegistry> {
        let scheduler = LayoutScheduler::new();
        let svs: Vec<SparseVec> =
            (0..3).map(|i| SparseVec::new(6, vec![i, i + 3], vec![1.0, -0.5])).collect();
        let model = SvmModel::new(KernelKind::Linear, svs, vec![1.0, -1.0, 0.5], 0.1);
        Arc::new(ModelRegistry::new().with(ServedModel::new("toy", model, &scheduler)))
    }

    fn start(config: ExecutorConfig) -> Arc<Executor> {
        Executor::start(
            small_registry(),
            Arc::new(LayoutScheduler::new()),
            Arc::new(ServeStats::new()),
            config,
        )
    }

    #[test]
    fn predict_round_trip_through_the_pool() {
        let exec = start(ExecutorConfig { gather: Duration::ZERO, ..Default::default() });
        let x = SparseVec::new(6, vec![0], vec![2.0]);
        let rx = exec.submit_predict("toy", vec![x.clone()], 0).unwrap();
        let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let served = exec.registry().get("toy").unwrap().clone();
        let want = served.model().decision_function(&x);
        assert_eq!(resp, Response::Predictions(vec![want]));
        exec.shutdown();
    }

    #[test]
    fn unknown_model_and_bad_dims_are_immediate_errors() {
        let exec = start(ExecutorConfig::default());
        assert!(matches!(exec.submit_predict("missing", vec![], 0), Err(Response::Error(_))));
        assert!(matches!(
            exec.submit_predict("toy", vec![SparseVec::zeros(7)], 0),
            Err(Response::Error(_))
        ));
        exec.shutdown();
    }

    #[test]
    fn paused_queues_fill_then_refuse_with_busy() {
        let exec = start(ExecutorConfig {
            queue_capacity: 2,
            gather: Duration::ZERO,
            ..Default::default()
        });
        exec.pause(true);
        let x = || vec![SparseVec::new(6, vec![1], vec![1.0])];
        let rx1 = exec.submit_predict("toy", x(), 0).unwrap();
        let rx2 = exec.submit_predict("toy", x(), 0).unwrap();
        assert_eq!(exec.submit_predict("toy", x(), 0).unwrap_err(), Response::Busy);
        assert_eq!(exec.queue_depths()[0].1, 2);
        exec.pause(false);
        assert!(matches!(rx1.recv_timeout(Duration::from_secs(5)), Ok(Response::Predictions(_))));
        assert!(matches!(rx2.recv_timeout(Duration::from_secs(5)), Ok(Response::Predictions(_))));
        assert_eq!(exec.stats().predict.busy.load(Ordering::Relaxed), 1);
        exec.shutdown();
    }

    #[test]
    fn expired_deadlines_get_timed_out_not_executed() {
        let exec = start(ExecutorConfig { gather: Duration::ZERO, ..Default::default() });
        exec.pause(true);
        let rx =
            exec.submit_predict("toy", vec![SparseVec::new(6, vec![0], vec![1.0])], 1).unwrap();
        std::thread::sleep(Duration::from_millis(10)); // let the 1 ms deadline lapse
        exec.pause(false);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), Response::TimedOut);
        assert_eq!(exec.stats().predict.timed_out.load(Ordering::Relaxed), 1);
        exec.shutdown();
    }

    #[test]
    fn paused_batch_coalesces_into_one_block() {
        let exec = start(ExecutorConfig { gather: Duration::ZERO, ..Default::default() });
        exec.pause(true);
        let rxs: Vec<_> = (0..5)
            .map(|i| {
                exec.submit_predict("toy", vec![SparseVec::new(6, vec![i], vec![1.0])], 0).unwrap()
            })
            .collect();
        exec.pause(false);
        for rx in rxs {
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(5)),
                Ok(Response::Predictions(_))
            ));
        }
        let served = exec.registry().get("toy").unwrap().clone();
        assert!(
            served.counters().snapshot().multi_vector_blocks() >= 1,
            "5 queued singles should form at least one multi-vector block"
        );
        exec.shutdown();
    }

    #[test]
    fn schedule_requests_report_the_chosen_format() {
        let exec = start(ExecutorConfig::default());
        let mut t = TripletMatrix::with_capacity(4, 4, 4);
        for i in 0..4 {
            t.push(i, i, 1.0);
        }
        // Default scheduler: some valid format with a populated scoreboard.
        let rx = exec.submit_schedule(t.clone(), None, 0).unwrap();
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Response::Scheduled { format, scores, .. } => {
                assert!(format.parse::<Format>().is_ok(), "unknown format {format:?}");
                assert!(!scores.is_empty());
            }
            other => panic!("unexpected response {other:?}"),
        }
        // A fixed strategy pins the outcome and the decision counter.
        let rx = exec.submit_schedule(t, Some(SelectionStrategy::Fixed(Format::Dia)), 0).unwrap();
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Response::Scheduled { format, .. } => assert_eq!(format, "DIA"),
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(exec.stats().decisions()[dls_sparse::telemetry::format_index(Format::Dia)], 1);
        exec.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work_before_refusing() {
        let exec = start(ExecutorConfig { gather: Duration::ZERO, ..Default::default() });
        exec.pause(true);
        let rx =
            exec.submit_predict("toy", vec![SparseVec::new(6, vec![2], vec![1.0])], 0).unwrap();
        // Shutdown un-pauses, drains, then joins: the queued job completes.
        exec.shutdown();
        assert!(matches!(rx.try_recv(), Ok(Response::Predictions(_))));
        assert_eq!(
            exec.submit_predict("toy", vec![SparseVec::new(6, vec![2], vec![1.0])], 0).unwrap_err(),
            Response::ShuttingDown
        );
    }

    #[test]
    fn strategy_names_parse() {
        assert_eq!(parse_strategy("").unwrap(), None);
        assert_eq!(parse_strategy("cost").unwrap(), Some(SelectionStrategy::CostModel));
        assert!(matches!(
            parse_strategy("CSR").unwrap(),
            Some(SelectionStrategy::Fixed(Format::Csr))
        ));
        assert!(parse_strategy("bogus").is_err());
    }
}
