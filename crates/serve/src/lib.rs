//! dls-serve: an SLO-aware batching SVM inference + layout-scheduling
//! service.
//!
//! The paper's §V observation — blocked SMSV kernels amortise a format's
//! per-sweep overhead across many vectors — is applied here *across
//! clients*: concurrent single-vector `Predict` requests against the same
//! model are coalesced by a batching executor into one
//! [`dls_sparse::MatrixFormat::smsv_block`] sweep (up to
//! [`dls_sparse::MAX_SMSV_BLOCK`] vectors), with a short gather window
//! trading bounded latency for larger blocks. Because the blocked kernels
//! accumulate per row in a composition-independent order, coalesced
//! responses are bit-identical to per-vector evaluation.
//!
//! Coalescing is great for throughput but blind to urgency, so requests
//! carry a *class* ([`proto::RequestClass`]: interactive or batch) and an
//! optional per-request SLO on the wire (protocol v2; v1 frames still
//! decode, as interactive with the legacy deadline). A pluggable
//! [`discipline::QueueDiscipline`] decides when the gather window breaks
//! and in what order classed queues drain — FIFO, strict priority, or the
//! default [`discipline::SloAware`], which holds the window only while no
//! queued interactive request would miss its deadline. A latency estimator
//! ([`latency::TreeLatencyEstimator`], a `dls-learn` CART regression over
//! the paper's nine influencing parameters plus batch size, calibrated
//! against real sweeps at start-up) feeds both that slack computation and
//! predictive admission control: requests whose projected completion
//! already overshoots their deadline are refused with `Busy` at submit
//! time instead of timing out in the queue.
//!
//! The service is std-only: a hand-rolled length-prefixed wire protocol
//! ([`proto`]), bounded per-model classed queues with reject-don't-buffer
//! backpressure and an interactive admission reserve ([`queue`]),
//! per-class SLO accounting, and graceful drain-on-shutdown. Telemetry
//! ([`stats`]) exposes request latencies, per-class SLO violation rates,
//! batch-size histograms, queue depths, and each model's scheduled layout.
//!
//! The serving path is failure-hardened end to end ([`fault`],
//! [`brownout`]): a seeded deterministic fault-injection plan can be
//! threaded through connection I/O, kernel execution, and the registry
//! (a no-op by default); connections carry read/write timeouts and
//! self-reap when idle; kernel panics are caught, isolated, and answered
//! with a per-model degradation ladder (healthy → degraded onto an
//! analytically-selected fallback layout → quarantined); the client side
//! classifies failures ([`client::ClientError`]) and
//! [`client::RetryClient`] reconnects with jittered exponential backoff
//! under a retry budget; and a brown-out controller sheds batch load,
//! shrinks the gather window, and swaps in the pessimistic
//! [`latency::AnalyticLatencyEstimator`] when the interactive SLO
//! violation rate or queue pressure crosses its threshold. Every fault
//! and degradation event is counted in the stats JSON, and a `Health`
//! request reports the live ladder.
//!
//! The I/O front end is selectable ([`server::Frontend`]): the classic
//! thread-per-connection handler, or the readiness-driven [`reactor`] —
//! one event-loop thread over a hand-rolled epoll wrapper
//! ([`reactor::poll`]) driving every connection as a nonblocking state
//! machine. Protocol v3 frames carry a `frame_id`, so a v3 client (see
//! [`client::PipelinedClient`]) can pipeline many requests on one socket
//! and take responses out of order as the executor finishes them; v1/v2
//! clients interoperate unchanged, served one-in-flight at their arrival
//! version. The executor runs sharded per-model lanes with idle-worker
//! work stealing, and the reactor's gauges (open connections, in-flight
//! pipelined frames, steals, wakeups) land in the stats JSON.
//!
//! Layer map:
//!
//! ```text
//! client  --v1/v2/v3 frames-->  server (threads: acceptor + connection
//!    |                          |    threads | reactor: epoll event loop,
//!    |  RetryClient:            |    read/write/idle timeouts,
//!    |  reconnect+backoff       |    FaultStream I/O wrapper)
//!    |  PipelinedClient:        |  admission: projected miss / queue
//!    |  many frames in flight   |  full / brown-out shed -> Busy
//!    |                          v
//!    |                       executor (sharded worker pool + stealing,
//!    |                          |       per-model ClassedQueues,
//!    |                          |       QueueDiscipline, catch_unwind
//!    |                          |       panic isolation, BrownoutController)
//!    |                          |  coalesce <= MAX_SMSV_BLOCK vectors
//!    |                          v
//!    |                       registry (ServedModel: scheduled +
//!    |                          |       instrumented support matrix,
//!    |                          |       health ladder + fallback layout)
//!    |                          v
//!    '--- typed errors      svm::predict_batch_with -> sparse::smsv_block
//! ```

pub mod brownout;
pub mod client;
pub mod discipline;
pub mod executor;
pub mod fault;
pub mod feedback;
pub mod latency;
pub mod proto;
pub mod queue;
pub mod reactor;
pub mod registry;
pub mod server;
pub mod stats;

pub use brownout::{BrownoutConfig, BrownoutController, BrownoutTransition};
pub use client::{
    ClientError, PipelinedClient, PredictRequest, RetryClient, RetryPolicy, ScheduleRequest,
    ServeClient,
};
pub use discipline::{
    parse_discipline, Decision, DisciplineCtx, Fifo, QueueDiscipline, SloAware, StrictPriority,
    DISCIPLINES,
};
pub use executor::{Executor, ExecutorConfig};
pub use fault::{
    FaultAction, FaultInjector, FaultKind, FaultPlan, FaultSite, FaultStream, SplitMix64,
};
pub use feedback::{retrain_outcome_name, FeedbackConfig, FeedbackHub, RetrainOutcome};
pub use latency::{AnalyticLatencyEstimator, TreeLatencyEstimator};
#[allow(deprecated)]
pub use proto::MAX_FRAME;
pub use proto::{
    decode_request_framed, decode_response_framed, encode_request_framed, encode_response_framed,
    proto_error_of, ProtoError, Request, RequestClass, Response, ACCEPTED_VERSIONS, MAX_FRAME_LEN,
    PROTO_V1, PROTO_V2, PROTO_VERSION,
};
pub use queue::{ClassedQueue, DrainOrder, DrainPlan, JobMeta, PushError};
pub use registry::{ModelHealth, ModelRegistry, ServedModel, QUARANTINE_PANICS};
pub use server::{start, Frontend, ServerConfig, ServerHandle};
pub use stats::{
    parse_block_hist, ClassStats, DegradeCounters, FaultCounters, ReactorCounters,
    SelectorCounters, ServeStats,
};
