//! dls-serve: a batching SVM inference + layout-scheduling service.
//!
//! The paper's §V observation — blocked SMSV kernels amortise a format's
//! per-sweep overhead across many vectors — is applied here *across
//! clients*: concurrent single-vector `Predict` requests against the same
//! model are coalesced by a batching executor into one
//! [`dls_sparse::MatrixFormat::smsv_block`] sweep (up to
//! [`dls_sparse::MAX_SMSV_BLOCK`] vectors), with a short gather window
//! trading bounded latency for larger blocks. Because the blocked kernels
//! accumulate per row in a composition-independent order, coalesced
//! responses are bit-identical to per-vector evaluation.
//!
//! The service is std-only: a hand-rolled length-prefixed wire protocol
//! ([`proto`]), bounded per-model queues with reject-don't-buffer
//! backpressure ([`queue`]), per-request deadlines, and graceful
//! drain-on-shutdown. Telemetry ([`stats`]) exposes request latencies,
//! batch-size histograms, queue depths, and each model's scheduled layout.
//!
//! Layer map:
//!
//! ```text
//! client  --frames-->  server (acceptor + connection threads)
//!                         |  submit: try_push -> Busy on full
//!                         v
//!                      executor (worker pool, per-model BoundedQueues)
//!                         |  coalesce <= MAX_SMSV_BLOCK vectors
//!                         v
//!                      registry (ServedModel: scheduled + instrumented
//!                         |       support matrix)
//!                         v
//!                      svm::predict_batch_with -> sparse::smsv_block
//! ```

pub mod client;
pub mod executor;
pub mod proto;
pub mod queue;
pub mod registry;
pub mod server;
pub mod stats;

pub use client::ServeClient;
pub use executor::{Executor, ExecutorConfig};
pub use proto::{ProtoError, Request, Response, MAX_FRAME, PROTO_VERSION};
pub use queue::{BoundedQueue, PushError};
pub use registry::{ModelRegistry, ServedModel};
pub use server::{start, ServerConfig, ServerHandle};
pub use stats::{parse_block_hist, ServeStats};
