//! Loaded models and their scheduled, instrumented support matrices.
//!
//! A [`ServedModel`] is an [`SvmModel`] prepared for serving: its support
//! vectors are lowered to a row matrix, the [`LayoutScheduler`] picks that
//! matrix's storage format (per-model — heterogeneous models get
//! heterogeneous layouts, the paper's thesis applied across requests), and
//! the matrix is wrapped in an [`InstrumentedMatrix`] so every predict
//! batch feeds per-model [`SmsvCounters`] — including the block-size
//! histogram the `Stats` endpoint exposes.

use dls_core::{LayoutScheduler, SelectionReport, SelectionStrategy};
use dls_sparse::{
    Format, InstrumentedMatrix, MatrixFeatures, MatrixFormat, SmsvCounters, SparseVec,
};
use dls_svm::{PredictWorkspace, SvmModel};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Panics before a model is pulled from service entirely.
pub const QUARANTINE_PANICS: u64 = 3;

/// A served model's rung on the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelHealth {
    /// Serving normally through the scheduler-chosen layout.
    Healthy = 0,
    /// At least one execution panicked: the model serves through an
    /// analytic rule-based fallback layout (the cheap selector that cannot
    /// depend on the code path that just failed).
    Degraded = 1,
    /// Repeated panics ([`QUARANTINE_PANICS`]): the executor refuses new
    /// submissions for this model with a typed error.
    Quarantined = 2,
}

impl ModelHealth {
    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelHealth::Healthy => "healthy",
            ModelHealth::Degraded => "degraded",
            ModelHealth::Quarantined => "quarantined",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => ModelHealth::Healthy,
            1 => ModelHealth::Degraded,
            _ => ModelHealth::Quarantined,
        }
    }
}

/// One model, ready to serve.
pub struct ServedModel {
    name: String,
    model: SvmModel,
    /// Support-vector rows in the scheduled format, metered.
    matrix: Option<InstrumentedMatrix>,
    counters: Arc<SmsvCounters>,
    report: Option<SelectionReport>,
    /// The support matrix's nine influencing parameters — the latency
    /// estimator's per-model fingerprint.
    features: Option<MatrixFeatures>,
    dim: usize,
    /// Current [`ModelHealth`] rung (atomic so the hot path reads it with
    /// one relaxed load).
    health: AtomicU8,
    /// Executions that panicked under this model.
    panics: AtomicU64,
    /// The analytic-fallback layout, built on first degradation.
    fallback: Mutex<Option<InstrumentedMatrix>>,
}

impl ServedModel {
    /// Prepares `model` for serving: lowers the support vectors, runs the
    /// scheduler on them, and wires up fresh counters.
    pub fn new(name: impl Into<String>, model: SvmModel, scheduler: &LayoutScheduler) -> Self {
        let counters = SmsvCounters::shared();
        let sv_rows = model.support_matrix(PredictWorkspace::CACHE_FORMAT);
        let (matrix, report, features, dim) = match sv_rows {
            Some(m) => {
                let t = m.to_triplets().compact();
                let features = MatrixFeatures::from_triplets(&t);
                let scheduled = scheduler.schedule(&t);
                let report = scheduled.report().clone();
                let dim = m.cols();
                (
                    Some(InstrumentedMatrix::new(scheduled.into_matrix(), Arc::clone(&counters))),
                    Some(report),
                    Some(features),
                    dim,
                )
            }
            // A model with no support vectors predicts a constant.
            None => (None, None, None, 0),
        };
        Self {
            name: name.into(),
            model,
            matrix,
            counters,
            report,
            features,
            dim,
            health: AtomicU8::new(ModelHealth::Healthy as u8),
            panics: AtomicU64::new(0),
            fallback: Mutex::new(None),
        }
    }

    /// Registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying trained model.
    pub fn model(&self) -> &SvmModel {
        &self.model
    }

    /// Feature dimension queries must match (0 for constant models).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The format the scheduler chose for the support matrix.
    pub fn format(&self) -> Option<Format> {
        self.matrix.as_ref().map(|m| m.format())
    }

    /// The scheduler's full selection report, when a matrix exists.
    pub fn report(&self) -> Option<&SelectionReport> {
        self.report.as_ref()
    }

    /// The support matrix's influencing parameters (paper Table IV),
    /// `None` for constant models.
    pub fn matrix_features(&self) -> Option<&MatrixFeatures> {
        self.features.as_ref()
    }

    /// This model's live SMSV counters.
    pub fn counters(&self) -> &Arc<SmsvCounters> {
        &self.counters
    }

    /// Current rung on the degradation ladder.
    pub fn health(&self) -> ModelHealth {
        ModelHealth::from_u8(self.health.load(Ordering::Relaxed))
    }

    /// Executions that panicked under this model.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Whether new submissions must be refused.
    pub fn is_quarantined(&self) -> bool {
        self.health() == ModelHealth::Quarantined
    }

    /// Records one isolated execution panic and walks the ladder: the
    /// first panic degrades the model onto an analytic rule-based fallback
    /// layout (rebuilt from the support triplets — the cheap selector
    /// keeps serving when the learned-path layout is implicated), and the
    /// [`QUARANTINE_PANICS`]-th pulls it from service. Returns the new
    /// rung.
    pub fn note_panic(&self) -> ModelHealth {
        let panics = self.panics.fetch_add(1, Ordering::SeqCst) + 1;
        let rung = if panics >= QUARANTINE_PANICS {
            ModelHealth::Quarantined
        } else {
            ModelHealth::Degraded
        };
        if rung == ModelHealth::Degraded {
            let mut fallback = self.fallback.lock().expect("fallback poisoned");
            if fallback.is_none() {
                if let Some(m) = &self.matrix {
                    let scheduled = LayoutScheduler::with_strategy(SelectionStrategy::RuleBased)
                        .schedule(&m.to_triplets());
                    *fallback = Some(InstrumentedMatrix::new(
                        scheduled.into_matrix(),
                        Arc::clone(&self.counters),
                    ));
                }
            }
        }
        self.health.store(rung as u8, Ordering::SeqCst);
        rung
    }

    /// Restores the model to the healthy rung (operator action / tests).
    pub fn reset_health(&self) {
        self.panics.store(0, Ordering::SeqCst);
        self.health.store(ModelHealth::Healthy as u8, Ordering::SeqCst);
    }

    /// The format answers are currently served from: the fallback layout
    /// while degraded, else the scheduler's choice.
    pub fn serving_format(&self) -> Option<Format> {
        if self.health() != ModelHealth::Healthy {
            if let Some(fb) = self.fallback.lock().expect("fallback poisoned").as_ref() {
                return Some(fb.format());
            }
        }
        self.format()
    }

    /// Decision values for a batch, through the blocked engine and this
    /// model's instrumented matrix. `ws` is caller-held scratch (one per
    /// worker thread); only its buffers are used, not its matrix cache.
    /// A degraded model answers through its analytic-fallback layout.
    pub fn predict(&self, xs: &[SparseVec], ws: &mut PredictWorkspace) -> Vec<f64> {
        if self.health() != ModelHealth::Healthy {
            let fallback = self.fallback.lock().expect("fallback poisoned");
            if let Some(fb) = fallback.as_ref() {
                return self.model.predict_batch_with(fb, xs, ws);
            }
        }
        match &self.matrix {
            Some(m) => self.model.predict_batch_with(m, xs, ws),
            None => vec![self.model.bias(); xs.len()],
        }
    }

    /// Validates one query vector's dimension.
    pub fn check_dim(&self, x: &SparseVec) -> Result<(), String> {
        if self.matrix.is_some() && x.dim() != self.dim {
            return Err(format!(
                "model {:?} expects dimension {}, got {}",
                self.name,
                self.dim,
                x.dim()
            ));
        }
        Ok(())
    }
}

/// The set of models a server instance hosts, keyed by name.
///
/// The registry is immutable once the server starts (swap-in of new models
/// is a restart concern), so lookups are lock-free `Arc` clones.
#[derive(Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, Arc<ServedModel>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a prepared model. Returns `self` for builder-style chaining;
    /// a duplicate name replaces the previous entry.
    pub fn with(mut self, served: ServedModel) -> Self {
        self.insert(served);
        self
    }

    /// Adds a prepared model.
    pub fn insert(&mut self, served: ServedModel) {
        self.models.insert(served.name.clone(), Arc::new(served));
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Option<&Arc<ServedModel>> {
        self.models.get(name)
    }

    /// All hosted models, in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<ServedModel>> {
        self.models.values()
    }

    /// Number of hosted models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry hosts no models.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_svm::KernelKind;

    fn toy_model() -> SvmModel {
        let svs = vec![
            SparseVec::new(6, vec![0, 2], vec![1.0, -1.0]),
            SparseVec::new(6, vec![1, 5], vec![0.5, 2.0]),
        ];
        SvmModel::new(KernelKind::Linear, svs, vec![1.0, -0.5], 0.25)
    }

    #[test]
    fn served_model_predicts_like_the_raw_model() {
        let scheduler = LayoutScheduler::new();
        let served = ServedModel::new("toy", toy_model(), &scheduler);
        assert_eq!(served.dim(), 6);
        assert!(served.format().is_some());
        let feats = served.matrix_features().expect("support matrix has features");
        assert_eq!((feats.m, feats.n, feats.nnz), (2, 6, 4));
        let xs = vec![
            SparseVec::new(6, vec![0, 1], vec![2.0, 4.0]),
            SparseVec::new(6, vec![5], vec![-1.0]),
        ];
        let mut ws = PredictWorkspace::new();
        let got = served.predict(&xs, &mut ws);
        for (x, &g) in xs.iter().zip(&got) {
            assert_eq!(g.to_bits(), served.model().decision_function(x).to_bits());
        }
        // Predictions were metered into this model's counters.
        assert!(served.counters().snapshot().total_calls() >= 2);
    }

    #[test]
    fn constant_model_serves_its_bias() {
        let scheduler = LayoutScheduler::new();
        let model = SvmModel::new(KernelKind::Linear, vec![], vec![], -1.5);
        let served = ServedModel::new("const", model, &scheduler);
        assert_eq!(served.format(), None);
        let mut ws = PredictWorkspace::new();
        assert_eq!(served.predict(&[SparseVec::zeros(3)], &mut ws), vec![-1.5]);
        assert!(served.check_dim(&SparseVec::zeros(99)).is_ok());
    }

    #[test]
    fn dimension_mismatches_are_reported_not_panicked() {
        let served = ServedModel::new("toy", toy_model(), &LayoutScheduler::new());
        assert!(served.check_dim(&SparseVec::zeros(6)).is_ok());
        let err = served.check_dim(&SparseVec::zeros(7)).unwrap_err();
        assert!(err.contains("dimension 6"), "{err}");
    }

    #[test]
    fn panic_ladder_degrades_then_quarantines_with_bit_exact_fallback() {
        let served = ServedModel::new("toy", toy_model(), &LayoutScheduler::new());
        assert_eq!(served.health(), ModelHealth::Healthy);

        let xs = vec![
            SparseVec::new(6, vec![0, 1], vec![2.0, 4.0]),
            SparseVec::new(6, vec![5], vec![-1.0]),
        ];
        let mut ws = PredictWorkspace::new();
        let healthy = served.predict(&xs, &mut ws);

        // First panic: degraded, serving from the rule-based fallback —
        // and still bit-exact, because layout never changes values.
        assert_eq!(served.note_panic(), ModelHealth::Degraded);
        assert_eq!(served.health(), ModelHealth::Degraded);
        assert!(served.serving_format().is_some());
        let degraded = served.predict(&xs, &mut ws);
        for (h, d) in healthy.iter().zip(&degraded) {
            assert_eq!(h.to_bits(), d.to_bits());
        }

        // Repeated panics quarantine.
        assert_eq!(served.note_panic(), ModelHealth::Degraded);
        assert_eq!(served.note_panic(), ModelHealth::Quarantined);
        assert!(served.is_quarantined());
        assert_eq!(served.panics(), 3);

        served.reset_health();
        assert_eq!(served.health(), ModelHealth::Healthy);
        assert_eq!(served.panics(), 0);
    }

    #[test]
    fn constant_model_survives_the_ladder_without_a_matrix() {
        let model = SvmModel::new(KernelKind::Linear, vec![], vec![], -1.5);
        let served = ServedModel::new("const", model, &LayoutScheduler::new());
        assert_eq!(served.note_panic(), ModelHealth::Degraded);
        let mut ws = PredictWorkspace::new();
        // No fallback matrix exists; the bias path still answers.
        assert_eq!(served.predict(&[SparseVec::zeros(3)], &mut ws), vec![-1.5]);
        assert_eq!(served.serving_format(), None);
    }

    #[test]
    fn registry_lookup_and_iteration() {
        let scheduler = LayoutScheduler::new();
        let reg = ModelRegistry::new()
            .with(ServedModel::new("b", toy_model(), &scheduler))
            .with(ServedModel::new("a", toy_model(), &scheduler));
        assert_eq!(reg.len(), 2);
        assert!(reg.get("a").is_some());
        assert!(reg.get("missing").is_none());
        let names: Vec<&str> = reg.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
