//! A small synchronous client for the dls-serve protocol.
//!
//! One [`ServeClient`] wraps one TCP connection and speaks strict
//! request/response; open several clients for concurrent requests (that is
//! what makes the server coalesce). Methods return the server's typed
//! [`Response`] — including `Busy` / `TimedOut` — rather than flattening
//! everything into errors, so callers can implement their own retry
//! policy.
//!
//! Requests are built with typed builders and sent with
//! [`ServeClient::send`]:
//!
//! ```no_run
//! # use dls_serve::client::{PredictRequest, ServeClient};
//! # use dls_serve::proto::RequestClass;
//! # use dls_sparse::SparseVec;
//! # use std::time::Duration;
//! let mut client = ServeClient::connect("127.0.0.1:7070")?;
//! let req = PredictRequest::builder("mnist")
//!     .vector(SparseVec::new(784, vec![3], vec![1.0]))
//!     .class(RequestClass::Interactive)
//!     .slo(Duration::from_millis(20))
//!     .build();
//! let resp = client.send(&req)?;
//! # let _ = resp; Ok::<(), std::io::Error>(())
//! ```
//!
//! The client speaks protocol v2 by default;
//! [`ServeClient::set_protocol_version`] downgrades the wire encoding to
//! v1 for compatibility testing against old servers (class and SLO are
//! then dropped from `Predict` frames — the server treats such requests
//! as interactive with the legacy deadline).

use crate::proto::{
    decode_response, encode_request_version, read_frame, write_frame, Request, RequestClass,
    Response, ACCEPTED_VERSIONS, PROTO_VERSION,
};
use dls_sparse::SparseVec;
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A typed predict request: which model, which vectors, and how urgent.
///
/// Construct via [`PredictRequest::builder`]. The class defaults to
/// [`RequestClass::Interactive`]; with neither [`slo`] nor [`deadline`]
/// set, the server applies its per-class default SLO.
///
/// [`slo`]: PredictRequestBuilder::slo
/// [`deadline`]: PredictRequestBuilder::deadline
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRequest {
    /// Registry name of the target model.
    pub model: String,
    /// Query vectors (one response value per vector).
    pub vectors: Vec<SparseVec>,
    /// Scheduling class.
    pub class: RequestClass,
    /// Explicit SLO in microseconds; `0` defers to `deadline_ms`.
    pub slo_us: u32,
    /// Legacy whole-millisecond deadline; `0` defers to the server's
    /// per-class default.
    pub deadline_ms: u32,
}

impl PredictRequest {
    /// Starts building a predict request against `model`.
    pub fn builder(model: impl Into<String>) -> PredictRequestBuilder {
        PredictRequestBuilder {
            req: PredictRequest {
                model: model.into(),
                vectors: Vec::new(),
                class: RequestClass::Interactive,
                slo_us: 0,
                deadline_ms: 0,
            },
        }
    }
}

/// Builder for [`PredictRequest`].
#[derive(Debug, Clone)]
pub struct PredictRequestBuilder {
    req: PredictRequest,
}

impl PredictRequestBuilder {
    /// Appends one query vector.
    pub fn vector(mut self, v: SparseVec) -> Self {
        self.req.vectors.push(v);
        self
    }

    /// Appends many query vectors.
    pub fn vectors(mut self, vs: impl IntoIterator<Item = SparseVec>) -> Self {
        self.req.vectors.extend(vs);
        self
    }

    /// Sets the scheduling class.
    pub fn class(mut self, class: RequestClass) -> Self {
        self.req.class = class;
        self
    }

    /// Sets an explicit SLO. Sub-microsecond durations round up to 1 µs
    /// (so a set SLO is never silently dropped); durations beyond
    /// `u32::MAX` µs (≈ 71 min) saturate.
    pub fn slo(mut self, slo: Duration) -> Self {
        let us = slo.as_micros().clamp(1, u128::from(u32::MAX)) as u32;
        self.req.slo_us = us;
        self
    }

    /// Sets the legacy millisecond-granularity deadline (ignored by the
    /// server when an SLO is also set). Sub-millisecond durations round
    /// up to 1 ms; beyond `u32::MAX` ms saturates.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        let ms = deadline.as_millis().clamp(1, u128::from(u32::MAX)) as u32;
        self.req.deadline_ms = ms;
        self
    }

    /// Finalises the request.
    pub fn build(self) -> PredictRequest {
        self.req
    }
}

impl From<&PredictRequest> for Request {
    fn from(r: &PredictRequest) -> Self {
        Request::Predict {
            model: r.model.clone(),
            deadline_ms: r.deadline_ms,
            class: r.class,
            slo_us: r.slo_us,
            vectors: r.vectors.clone(),
        }
    }
}

/// A typed schedule request: pick a layout for an explicit matrix.
///
/// Construct via [`ScheduleRequest::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleRequest {
    /// Strategy name (empty string = server default).
    pub strategy: String,
    /// Matrix rows.
    pub rows: u64,
    /// Matrix columns.
    pub cols: u64,
    /// `(row, col, value)` triplets.
    pub entries: Vec<(u64, u64, f64)>,
}

impl ScheduleRequest {
    /// Starts building a schedule request for an `rows × cols` matrix.
    pub fn builder(rows: u64, cols: u64) -> ScheduleRequestBuilder {
        ScheduleRequestBuilder {
            req: ScheduleRequest { strategy: String::new(), rows, cols, entries: Vec::new() },
        }
    }
}

/// Builder for [`ScheduleRequest`].
#[derive(Debug, Clone)]
pub struct ScheduleRequestBuilder {
    req: ScheduleRequest,
}

impl ScheduleRequestBuilder {
    /// Selects a strategy by wire name (default: server's configured one).
    pub fn strategy(mut self, strategy: impl Into<String>) -> Self {
        self.req.strategy = strategy.into();
        self
    }

    /// Appends one matrix entry.
    pub fn entry(mut self, row: u64, col: u64, value: f64) -> Self {
        self.req.entries.push((row, col, value));
        self
    }

    /// Appends many matrix entries.
    pub fn entries(mut self, es: impl IntoIterator<Item = (u64, u64, f64)>) -> Self {
        self.req.entries.extend(es);
        self
    }

    /// Finalises the request.
    pub fn build(self) -> ScheduleRequest {
        self.req
    }
}

impl From<&ScheduleRequest> for Request {
    fn from(r: &ScheduleRequest) -> Self {
        Request::Schedule {
            strategy: r.strategy.clone(),
            rows: r.rows,
            cols: r.cols,
            entries: r.entries.clone(),
        }
    }
}

/// A connected client.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    version: u8,
}

impl ServeClient {
    /// Connects to a server (speaking the current protocol version).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            version: PROTO_VERSION,
        })
    }

    /// Selects the wire protocol version for subsequent requests (v1
    /// drops class/SLO from `Predict` frames). Errors on versions this
    /// client does not speak.
    pub fn set_protocol_version(&mut self, version: u8) -> Result<(), String> {
        if !ACCEPTED_VERSIONS.contains(&version) {
            return Err(format!("unsupported protocol version {version}"));
        }
        self.version = version;
        Ok(())
    }

    /// The wire protocol version in effect.
    pub fn protocol_version(&self) -> u8 {
        self.version
    }

    /// Bounds how long a single [`ServeClient::request`] may wait on the
    /// socket for its response; `None` waits indefinitely.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one raw request and waits for its response.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        write_frame(&mut self.writer, &encode_request_version(req, self.version))?;
        match read_frame(&mut self.reader)? {
            Some(payload) => decode_response(&payload)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-request",
            )),
        }
    }

    /// Sends a built request ([`PredictRequest`] or [`ScheduleRequest`])
    /// and waits for its response.
    pub fn send<R>(&mut self, req: R) -> std::io::Result<Response>
    where
        Request: From<R>,
    {
        self.request(&Request::from(req))
    }

    /// Decision values for a batch of vectors against a named model.
    /// `deadline_ms = 0` uses the server default.
    #[deprecated(since = "0.6.0", note = "build a `PredictRequest` and use `send`")]
    pub fn predict(
        &mut self,
        model: &str,
        vectors: Vec<SparseVec>,
        deadline_ms: u32,
    ) -> std::io::Result<Response> {
        self.request(&Request::Predict {
            model: model.to_string(),
            deadline_ms,
            class: RequestClass::Interactive,
            slo_us: 0,
            vectors,
        })
    }

    /// Asks the scheduler to pick a layout for an explicit matrix.
    #[deprecated(since = "0.6.0", note = "build a `ScheduleRequest` and use `send`")]
    pub fn schedule(
        &mut self,
        strategy: &str,
        rows: u64,
        cols: u64,
        entries: Vec<(u64, u64, f64)>,
    ) -> std::io::Result<Response> {
        self.request(&Request::Schedule { strategy: strategy.to_string(), rows, cols, entries })
    }

    /// Fetches the telemetry snapshot JSON.
    pub fn stats(&mut self) -> std::io::Result<String> {
        match self.request(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected Stats, got {other:?}"),
            )),
        }
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> std::io::Result<Response> {
        self.request(&Request::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_builder_defaults_and_knobs() {
        let req = PredictRequest::builder("m").build();
        assert_eq!(
            req,
            PredictRequest {
                model: "m".to_string(),
                vectors: vec![],
                class: RequestClass::Interactive,
                slo_us: 0,
                deadline_ms: 0,
            }
        );
        let req = PredictRequest::builder("m")
            .vector(SparseVec::new(4, vec![0], vec![1.0]))
            .vectors([SparseVec::zeros(4), SparseVec::zeros(4)])
            .class(RequestClass::Batch)
            .slo(Duration::from_millis(20))
            .deadline(Duration::from_secs(2))
            .build();
        assert_eq!(req.vectors.len(), 3);
        assert_eq!(req.class, RequestClass::Batch);
        assert_eq!(req.slo_us, 20_000);
        assert_eq!(req.deadline_ms, 2_000);
        // Tiny durations round up instead of vanishing; huge ones saturate.
        let req = PredictRequest::builder("m")
            .slo(Duration::from_nanos(1))
            .deadline(Duration::from_nanos(1))
            .build();
        assert_eq!((req.slo_us, req.deadline_ms), (1, 1));
        let req = PredictRequest::builder("m").slo(Duration::from_secs(1 << 40)).build();
        assert_eq!(req.slo_us, u32::MAX);
    }

    #[test]
    fn builders_lower_to_wire_requests() {
        let p = PredictRequest::builder("m")
            .vector(SparseVec::new(4, vec![1], vec![2.0]))
            .class(RequestClass::Batch)
            .slo(Duration::from_micros(500))
            .build();
        match Request::from(&p) {
            Request::Predict { model, deadline_ms, class, slo_us, vectors } => {
                assert_eq!(model, "m");
                assert_eq!(deadline_ms, 0);
                assert_eq!(class, RequestClass::Batch);
                assert_eq!(slo_us, 500);
                assert_eq!(vectors.len(), 1);
            }
            other => panic!("unexpected request {other:?}"),
        }
        let s = ScheduleRequest::builder(3, 4).strategy("cost").entry(0, 1, 5.0).build();
        match Request::from(&s) {
            Request::Schedule { strategy, rows, cols, entries } => {
                assert_eq!(strategy, "cost");
                assert_eq!((rows, cols), (3, 4));
                assert_eq!(entries, vec![(0, 1, 5.0)]);
            }
            other => panic!("unexpected request {other:?}"),
        }
    }
}
