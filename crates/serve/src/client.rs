//! A small synchronous client for the dls-serve protocol.
//!
//! One [`ServeClient`] wraps one TCP connection and speaks strict
//! request/response; open several clients for concurrent requests (that is
//! what makes the server coalesce). Methods return the server's typed
//! [`Response`] — including `Busy` / `TimedOut` — rather than flattening
//! everything into errors, so callers can implement their own retry
//! policy.
//!
//! Requests are built with typed builders and sent with
//! [`ServeClient::send`]:
//!
//! ```no_run
//! # use dls_serve::client::{PredictRequest, ServeClient};
//! # use dls_serve::proto::RequestClass;
//! # use dls_sparse::SparseVec;
//! # use std::time::Duration;
//! let mut client = ServeClient::connect("127.0.0.1:7070")?;
//! let req = PredictRequest::builder("mnist")
//!     .vector(SparseVec::new(784, vec![3], vec![1.0]))
//!     .class(RequestClass::Interactive)
//!     .slo(Duration::from_millis(20))
//!     .build();
//! let resp = client.send(&req)?;
//! # let _ = resp; Ok::<(), std::io::Error>(())
//! ```
//!
//! The client speaks protocol v2 by default;
//! [`ServeClient::set_protocol_version`] downgrades the wire encoding to
//! v1 for compatibility testing against old servers (class and SLO are
//! then dropped from `Predict` frames — the server treats such requests
//! as interactive with the legacy deadline).
//!
//! Failures are typed: [`ServeClient::try_request`] returns a
//! [`ClientError`] that distinguishes a lost connection from a timeout
//! from a protocol violation, and says which of those are worth retrying.
//! [`RetryClient`] builds on that: it reconnects on connection loss and
//! retries retryable failures with seeded, jittered exponential backoff
//! under a per-client retry budget.

use crate::fault::SplitMix64;
use crate::proto::{
    decode_response, decode_response_framed, encode_request_framed, encode_request_version,
    proto_error_of, read_frame, write_frame, ProtoError, Request, RequestClass, Response,
    ACCEPTED_VERSIONS, PROTO_VERSION,
};
use dls_sparse::SparseVec;
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, ErrorKind};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a request failed, and whether trying again can help.
///
/// Returned by [`ServeClient::try_request`]. The coarse
/// [`ServeClient::request`] flattens these back into `std::io::Error`
/// (with the `ClientError` attached as the error source) for callers that
/// do not care about the distinction.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connection died mid-request: broken pipe, reset, or the
    /// server closed the socket before (or while) sending the response.
    /// Retryable — reconnect and resend.
    ConnectionLost(String),
    /// The socket read timed out waiting for the response. Retryable.
    Timeout,
    /// A frame exceeded [`crate::proto::MAX_FRAME_LEN`] (ours outbound,
    /// or the server's inbound refusal). Not retryable: the same request
    /// will be refused again.
    FrameTooLarge(usize),
    /// The response arrived but did not decode; the stream can no longer
    /// be trusted to be frame-aligned. Not retryable on this connection.
    Protocol(String),
    /// Any other I/O failure. Not retryable by default.
    Io(std::io::Error),
}

impl ClientError {
    /// Whether a reconnect-and-resend has a chance of succeeding.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ClientError::ConnectionLost(_) | ClientError::Timeout)
    }

    /// Classifies a raw I/O failure from the socket.
    fn from_io(err: std::io::Error, during: &str) -> Self {
        if let Some(ProtoError::FrameTooLarge(len)) = proto_error_of(&err) {
            return ClientError::FrameTooLarge(*len);
        }
        match err.kind() {
            ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::NotConnected
            | ErrorKind::UnexpectedEof => ClientError::ConnectionLost(format!("{during}: {err}")),
            ErrorKind::TimedOut | ErrorKind::WouldBlock => ClientError::Timeout,
            _ => ClientError::Io(err),
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::ConnectionLost(what) => write!(f, "connection lost ({what})"),
            ClientError::Timeout => write!(f, "timed out waiting for the response"),
            ClientError::FrameTooLarge(len) => {
                write!(f, "frame of {len} bytes exceeds the protocol limit")
            }
            ClientError::Protocol(what) => write!(f, "protocol error: {what}"),
            ClientError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ClientError> for std::io::Error {
    fn from(err: ClientError) -> Self {
        let kind = match &err {
            ClientError::ConnectionLost(_) => ErrorKind::ConnectionReset,
            ClientError::Timeout => ErrorKind::TimedOut,
            ClientError::FrameTooLarge(_) | ClientError::Protocol(_) => ErrorKind::InvalidData,
            ClientError::Io(e) => e.kind(),
        };
        std::io::Error::new(kind, err)
    }
}

/// A typed predict request: which model, which vectors, and how urgent.
///
/// Construct via [`PredictRequest::builder`]. The class defaults to
/// [`RequestClass::Interactive`]; with neither [`slo`] nor [`deadline`]
/// set, the server applies its per-class default SLO.
///
/// [`slo`]: PredictRequestBuilder::slo
/// [`deadline`]: PredictRequestBuilder::deadline
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRequest {
    /// Registry name of the target model.
    pub model: String,
    /// Query vectors (one response value per vector).
    pub vectors: Vec<SparseVec>,
    /// Scheduling class.
    pub class: RequestClass,
    /// Explicit SLO in microseconds; `0` defers to `deadline_ms`.
    pub slo_us: u32,
    /// Legacy whole-millisecond deadline; `0` defers to the server's
    /// per-class default.
    pub deadline_ms: u32,
}

impl PredictRequest {
    /// Starts building a predict request against `model`.
    pub fn builder(model: impl Into<String>) -> PredictRequestBuilder {
        PredictRequestBuilder {
            req: PredictRequest {
                model: model.into(),
                vectors: Vec::new(),
                class: RequestClass::Interactive,
                slo_us: 0,
                deadline_ms: 0,
            },
        }
    }
}

/// Builder for [`PredictRequest`].
#[derive(Debug, Clone)]
pub struct PredictRequestBuilder {
    req: PredictRequest,
}

impl PredictRequestBuilder {
    /// Appends one query vector.
    pub fn vector(mut self, v: SparseVec) -> Self {
        self.req.vectors.push(v);
        self
    }

    /// Appends many query vectors.
    pub fn vectors(mut self, vs: impl IntoIterator<Item = SparseVec>) -> Self {
        self.req.vectors.extend(vs);
        self
    }

    /// Sets the scheduling class.
    pub fn class(mut self, class: RequestClass) -> Self {
        self.req.class = class;
        self
    }

    /// Sets an explicit SLO. Sub-microsecond durations round up to 1 µs
    /// (so a set SLO is never silently dropped); durations beyond
    /// `u32::MAX` µs (≈ 71 min) saturate.
    pub fn slo(mut self, slo: Duration) -> Self {
        let us = slo.as_micros().clamp(1, u128::from(u32::MAX)) as u32;
        self.req.slo_us = us;
        self
    }

    /// Sets the legacy millisecond-granularity deadline (ignored by the
    /// server when an SLO is also set). Sub-millisecond durations round
    /// up to 1 ms; beyond `u32::MAX` ms saturates.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        let ms = deadline.as_millis().clamp(1, u128::from(u32::MAX)) as u32;
        self.req.deadline_ms = ms;
        self
    }

    /// Finalises the request.
    pub fn build(self) -> PredictRequest {
        self.req
    }
}

impl From<&PredictRequest> for Request {
    fn from(r: &PredictRequest) -> Self {
        Request::Predict {
            model: r.model.clone(),
            deadline_ms: r.deadline_ms,
            class: r.class,
            slo_us: r.slo_us,
            vectors: r.vectors.clone(),
        }
    }
}

/// A typed schedule request: pick a layout for an explicit matrix.
///
/// Construct via [`ScheduleRequest::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleRequest {
    /// Strategy name (empty string = server default).
    pub strategy: String,
    /// Matrix rows.
    pub rows: u64,
    /// Matrix columns.
    pub cols: u64,
    /// `(row, col, value)` triplets.
    pub entries: Vec<(u64, u64, f64)>,
}

impl ScheduleRequest {
    /// Starts building a schedule request for an `rows × cols` matrix.
    pub fn builder(rows: u64, cols: u64) -> ScheduleRequestBuilder {
        ScheduleRequestBuilder {
            req: ScheduleRequest { strategy: String::new(), rows, cols, entries: Vec::new() },
        }
    }
}

/// Builder for [`ScheduleRequest`].
#[derive(Debug, Clone)]
pub struct ScheduleRequestBuilder {
    req: ScheduleRequest,
}

impl ScheduleRequestBuilder {
    /// Selects a strategy by wire name (default: server's configured one).
    pub fn strategy(mut self, strategy: impl Into<String>) -> Self {
        self.req.strategy = strategy.into();
        self
    }

    /// Appends one matrix entry.
    pub fn entry(mut self, row: u64, col: u64, value: f64) -> Self {
        self.req.entries.push((row, col, value));
        self
    }

    /// Appends many matrix entries.
    pub fn entries(mut self, es: impl IntoIterator<Item = (u64, u64, f64)>) -> Self {
        self.req.entries.extend(es);
        self
    }

    /// Finalises the request.
    pub fn build(self) -> ScheduleRequest {
        self.req
    }
}

impl From<&ScheduleRequest> for Request {
    fn from(r: &ScheduleRequest) -> Self {
        Request::Schedule {
            strategy: r.strategy.clone(),
            rows: r.rows,
            cols: r.cols,
            entries: r.entries.clone(),
        }
    }
}

/// A connected client.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    version: u8,
}

impl ServeClient {
    /// Connects to a server (speaking the current protocol version).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            version: PROTO_VERSION,
        })
    }

    /// Selects the wire protocol version for subsequent requests (v1
    /// drops class/SLO from `Predict` frames). Errors on versions this
    /// client does not speak.
    pub fn set_protocol_version(&mut self, version: u8) -> Result<(), String> {
        if !ACCEPTED_VERSIONS.contains(&version) {
            return Err(format!("unsupported protocol version {version}"));
        }
        self.version = version;
        Ok(())
    }

    /// The wire protocol version in effect.
    pub fn protocol_version(&self) -> u8 {
        self.version
    }

    /// Bounds how long a single [`ServeClient::request`] may wait on the
    /// socket for its response; `None` waits indefinitely.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one raw request and waits for its response, with failures
    /// classified as [`ClientError`]s. A broken pipe, reset, or short
    /// read mid-response surfaces as [`ClientError::ConnectionLost`]
    /// (retryable on a fresh connection); a garbled response surfaces as
    /// [`ClientError::Protocol`] (this connection is no longer
    /// frame-aligned and should be dropped).
    pub fn try_request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &encode_request_version(req, self.version))
            .map_err(|e| ClientError::from_io(e, "sending the request"))?;
        match read_frame(&mut self.reader)
            .map_err(|e| ClientError::from_io(e, "reading the response"))?
        {
            Some(payload) => {
                decode_response(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
            }
            None => Err(ClientError::ConnectionLost(
                "server closed the connection mid-request".to_string(),
            )),
        }
    }

    /// Sends one raw request and waits for its response. Equivalent to
    /// [`ServeClient::try_request`] with the typed error flattened into
    /// `std::io::Error` (the [`ClientError`] rides along as the error's
    /// inner source).
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        self.try_request(req).map_err(std::io::Error::from)
    }

    /// Sends a built request ([`PredictRequest`] or [`ScheduleRequest`])
    /// and waits for its response.
    pub fn send<R>(&mut self, req: R) -> std::io::Result<Response>
    where
        Request: From<R>,
    {
        self.request(&Request::from(req))
    }

    /// Decision values for a batch of vectors against a named model.
    /// `deadline_ms = 0` uses the server default.
    #[deprecated(since = "0.6.0", note = "build a `PredictRequest` and use `send`")]
    pub fn predict(
        &mut self,
        model: &str,
        vectors: Vec<SparseVec>,
        deadline_ms: u32,
    ) -> std::io::Result<Response> {
        self.request(&Request::Predict {
            model: model.to_string(),
            deadline_ms,
            class: RequestClass::Interactive,
            slo_us: 0,
            vectors,
        })
    }

    /// Asks the scheduler to pick a layout for an explicit matrix.
    #[deprecated(since = "0.6.0", note = "build a `ScheduleRequest` and use `send`")]
    pub fn schedule(
        &mut self,
        strategy: &str,
        rows: u64,
        cols: u64,
        entries: Vec<(u64, u64, f64)>,
    ) -> std::io::Result<Response> {
        self.request(&Request::Schedule { strategy: strategy.to_string(), rows, cols, entries })
    }

    /// Fetches the telemetry snapshot JSON.
    pub fn stats(&mut self) -> std::io::Result<String> {
        match self.request(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected Stats, got {other:?}"),
            )),
        }
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> std::io::Result<Response> {
        self.request(&Request::Shutdown)
    }
}

/// A protocol-v3 client that multiplexes many in-flight requests over one
/// connection.
///
/// [`PipelinedClient::submit`] writes a frame tagged with a fresh
/// `frame_id` and returns immediately; the reactor front end answers
/// frames in whatever order the executor completes them, and
/// [`PipelinedClient::wait`] reassembles by id (stashing responses that
/// arrive for other frames). Against the `threads` front end responses
/// simply come back in submission order — the same API works, serially.
///
/// The client is synchronous and single-threaded: no background reader,
/// no locks. `wait`/`recv` block on the socket only when the wanted
/// response has not already been stashed.
pub struct PipelinedClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    /// Responses read off the wire while waiting for a different frame.
    stash: VecDeque<(u64, Response)>,
    /// Submitted but not yet returned to the caller.
    outstanding: usize,
}

impl PipelinedClient {
    /// Connects. Pipelining requires protocol v3, so there is no version
    /// knob — use [`ServeClient`] for compatibility testing.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            next_id: 1,
            stash: VecDeque::new(),
            outstanding: 0,
        })
    }

    /// Bounds how long [`PipelinedClient::recv`]/[`wait`](Self::wait) may
    /// block on the socket; `None` waits indefinitely.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Frames submitted whose responses have not been returned yet.
    pub fn in_flight(&self) -> usize {
        self.outstanding
    }

    /// Writes one request frame and returns its `frame_id` without
    /// waiting for the response.
    pub fn submit(&mut self, req: &Request) -> std::io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.writer, &encode_request_framed(req, PROTO_VERSION, id))?;
        self.outstanding += 1;
        Ok(id)
    }

    /// Returns the next available response: a stashed one if any, else
    /// the next frame off the wire, in the order the server finished them.
    pub fn recv(&mut self) -> std::io::Result<(u64, Response)> {
        if let Some(entry) = self.stash.pop_front() {
            self.outstanding -= 1;
            return Ok(entry);
        }
        let entry = self.read_one()?;
        self.outstanding -= 1;
        Ok(entry)
    }

    /// Blocks until the response for `frame_id` arrives, stashing any
    /// responses for other in-flight frames that arrive first.
    pub fn wait(&mut self, frame_id: u64) -> std::io::Result<Response> {
        if let Some(pos) = self.stash.iter().position(|(id, _)| *id == frame_id) {
            let (_, resp) = self.stash.remove(pos).expect("position just found");
            self.outstanding -= 1;
            return Ok(resp);
        }
        loop {
            let (id, resp) = self.read_one()?;
            if id == frame_id {
                self.outstanding -= 1;
                return Ok(resp);
            }
            self.stash.push_back((id, resp));
        }
    }

    /// Submits and waits — strict request/response over the pipelined
    /// codec, for mixed call sites.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        let id = self.submit(req)?;
        self.wait(id)
    }

    fn read_one(&mut self) -> std::io::Result<(u64, Response)> {
        match read_frame(&mut self.reader)? {
            Some(payload) => {
                let (_, frame_id, resp) = decode_response_framed(&payload).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
                Ok((frame_id, resp))
            }
            None => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection with frames in flight",
            )),
        }
    }
}

/// Retry shaping for [`RetryClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total tries per request, including the first (so `1` = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Retries remaining across the *whole client lifetime*. A budget
    /// stops a persistent outage from multiplying every request by
    /// `max_attempts` forever; once spent, failures surface immediately.
    pub retry_budget: u32,
    /// Whether a typed [`Response::Busy`] is retried like a transient
    /// failure (the server sheds batch work with `Busy` during brown-out,
    /// so batch callers usually want this).
    pub retry_busy: bool,
    /// Seed for backoff jitter; fixed seed = reproducible schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(500),
            retry_budget: 64,
            retry_busy: true,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before retry number `retry` (1-based):
    /// exponential doubling capped at [`RetryPolicy::max_backoff`], then
    /// scaled into `[50%, 100%]` so synchronized clients decorrelate.
    fn backoff(&self, retry: u32, rng: &mut SplitMix64) -> Duration {
        let exp = self.base_backoff.saturating_mul(1u32 << retry.saturating_sub(1).min(20));
        let capped = exp.min(self.max_backoff);
        capped.mul_f64(0.5 + 0.5 * rng.next_f64())
    }
}

/// A self-healing client: reconnects on connection loss and retries
/// retryable failures under a [`RetryPolicy`].
///
/// Wraps the same wire protocol as [`ServeClient`] but holds the server
/// address, so a dead connection is an event to recover from rather than
/// the end of the client. Only failures that [`ClientError::is_retryable`]
/// (and optionally [`Response::Busy`]) are retried; protocol violations
/// and oversized frames fail fast, since resending cannot fix them.
pub struct RetryClient {
    addr: String,
    policy: RetryPolicy,
    version: u8,
    read_timeout: Option<Duration>,
    rng: SplitMix64,
    budget_left: u32,
    conn: Option<ServeClient>,
}

impl RetryClient {
    /// Creates a client for `addr` with the default policy. Connection is
    /// lazy — the first request dials (and benefits from retry if the
    /// dial itself fails).
    pub fn connect(addr: impl Into<String>) -> Self {
        Self::with_policy(addr, RetryPolicy::default())
    }

    /// Creates a client for `addr` with an explicit policy.
    pub fn with_policy(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        let rng = SplitMix64::new(policy.seed);
        let budget_left = policy.retry_budget;
        Self {
            addr: addr.into(),
            policy,
            version: PROTO_VERSION,
            read_timeout: None,
            rng,
            budget_left,
            conn: None,
        }
    }

    /// Selects the wire protocol version (applies to the current and all
    /// future connections).
    pub fn set_protocol_version(&mut self, version: u8) -> Result<(), String> {
        if !ACCEPTED_VERSIONS.contains(&version) {
            return Err(format!("unsupported protocol version {version}"));
        }
        self.version = version;
        if let Some(conn) = &mut self.conn {
            conn.set_protocol_version(version)?;
        }
        Ok(())
    }

    /// Bounds how long each attempt waits on the socket for its response
    /// (a stalled read then counts as a retryable [`ClientError::Timeout`]).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
        if let Some(conn) = &self.conn {
            conn.set_read_timeout(timeout).ok();
        }
    }

    /// Retries left in the lifetime budget.
    pub fn retries_left(&self) -> u32 {
        self.budget_left
    }

    /// Whether a connection is currently held open.
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    fn ensure_connected(&mut self) -> Result<&mut ServeClient, ClientError> {
        if self.conn.is_none() {
            let client = ServeClient::connect(&self.addr)
                .map_err(|e| ClientError::from_io(e, "connecting"))?;
            client
                .set_read_timeout(self.read_timeout)
                .map_err(|e| ClientError::from_io(e, "configuring the socket"))?;
            let mut client = client;
            client.set_protocol_version(self.version).map_err(ClientError::Protocol)?;
            self.conn = Some(client);
        }
        Ok(self.conn.as_mut().expect("connection just established"))
    }

    /// Sends one raw request, reconnecting and retrying per the policy.
    /// Returns the last failure once attempts or the budget run out.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let outcome = match self.ensure_connected() {
                Ok(conn) => conn.try_request(req),
                Err(e) => Err(e),
            };
            let may_retry = attempt < self.policy.max_attempts.max(1) && self.budget_left > 0;
            match outcome {
                Ok(Response::Busy) if self.policy.retry_busy && may_retry => {
                    // The connection is healthy — the server refused the
                    // work. Keep the socket, wait, resend.
                    self.budget_left -= 1;
                    std::thread::sleep(self.policy.backoff(attempt, &mut self.rng));
                }
                Ok(resp) => return Ok(resp),
                Err(e) if e.is_retryable() && may_retry => {
                    // The connection can no longer be trusted (lost, or a
                    // response may still be in flight after a timeout):
                    // drop it and redial after the backoff.
                    self.conn = None;
                    self.budget_left -= 1;
                    std::thread::sleep(self.policy.backoff(attempt, &mut self.rng));
                }
                Err(e) => {
                    if matches!(e, ClientError::ConnectionLost(_) | ClientError::Protocol(_)) {
                        self.conn = None;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Sends a built request ([`PredictRequest`] or [`ScheduleRequest`])
    /// with retry.
    pub fn send<R>(&mut self, req: R) -> Result<Response, ClientError>
    where
        Request: From<R>,
    {
        self.request(&Request::from(req))
    }

    /// Fetches the telemetry snapshot JSON, with retry.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            other => Err(ClientError::Protocol(format!("expected Stats, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_builder_defaults_and_knobs() {
        let req = PredictRequest::builder("m").build();
        assert_eq!(
            req,
            PredictRequest {
                model: "m".to_string(),
                vectors: vec![],
                class: RequestClass::Interactive,
                slo_us: 0,
                deadline_ms: 0,
            }
        );
        let req = PredictRequest::builder("m")
            .vector(SparseVec::new(4, vec![0], vec![1.0]))
            .vectors([SparseVec::zeros(4), SparseVec::zeros(4)])
            .class(RequestClass::Batch)
            .slo(Duration::from_millis(20))
            .deadline(Duration::from_secs(2))
            .build();
        assert_eq!(req.vectors.len(), 3);
        assert_eq!(req.class, RequestClass::Batch);
        assert_eq!(req.slo_us, 20_000);
        assert_eq!(req.deadline_ms, 2_000);
        // Tiny durations round up instead of vanishing; huge ones saturate.
        let req = PredictRequest::builder("m")
            .slo(Duration::from_nanos(1))
            .deadline(Duration::from_nanos(1))
            .build();
        assert_eq!((req.slo_us, req.deadline_ms), (1, 1));
        let req = PredictRequest::builder("m").slo(Duration::from_secs(1 << 40)).build();
        assert_eq!(req.slo_us, u32::MAX);
    }

    #[test]
    fn builders_lower_to_wire_requests() {
        let p = PredictRequest::builder("m")
            .vector(SparseVec::new(4, vec![1], vec![2.0]))
            .class(RequestClass::Batch)
            .slo(Duration::from_micros(500))
            .build();
        match Request::from(&p) {
            Request::Predict { model, deadline_ms, class, slo_us, vectors } => {
                assert_eq!(model, "m");
                assert_eq!(deadline_ms, 0);
                assert_eq!(class, RequestClass::Batch);
                assert_eq!(slo_us, 500);
                assert_eq!(vectors.len(), 1);
            }
            other => panic!("unexpected request {other:?}"),
        }
        let s = ScheduleRequest::builder(3, 4).strategy("cost").entry(0, 1, 5.0).build();
        match Request::from(&s) {
            Request::Schedule { strategy, rows, cols, entries } => {
                assert_eq!(strategy, "cost");
                assert_eq!((rows, cols), (3, 4));
                assert_eq!(entries, vec![(0, 1, 5.0)]);
            }
            other => panic!("unexpected request {other:?}"),
        }
    }

    #[test]
    fn client_errors_classify_and_flatten() {
        for kind in [
            ErrorKind::BrokenPipe,
            ErrorKind::ConnectionReset,
            ErrorKind::ConnectionAborted,
            ErrorKind::UnexpectedEof,
        ] {
            let e = ClientError::from_io(std::io::Error::new(kind, "boom"), "test");
            assert!(matches!(e, ClientError::ConnectionLost(_)), "{kind:?} -> {e:?}");
            assert!(e.is_retryable());
        }
        let e = ClientError::from_io(std::io::Error::new(ErrorKind::TimedOut, "slow"), "test");
        assert!(matches!(e, ClientError::Timeout));
        assert!(e.is_retryable());
        let e = ClientError::from_io(
            std::io::Error::new(ErrorKind::InvalidData, ProtoError::FrameTooLarge(99)),
            "test",
        );
        assert!(matches!(e, ClientError::FrameTooLarge(99)));
        assert!(!e.is_retryable());
        assert!(!ClientError::Protocol("junk".into()).is_retryable());
        // Flattening keeps the typed error as the io::Error source.
        let io: std::io::Error = ClientError::ConnectionLost("gone".into()).into();
        assert_eq!(io.kind(), ErrorKind::ConnectionReset);
        assert!(io.get_ref().unwrap().downcast_ref::<ClientError>().is_some());
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_within_bounds() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
            ..Default::default()
        };
        let mut rng = SplitMix64::new(7);
        for retry in 1..=8u32 {
            let nominal =
                Duration::from_millis((10u64 << (retry - 1)).min(40)).min(policy.max_backoff);
            for _ in 0..16 {
                let b = policy.backoff(retry, &mut rng);
                assert!(b >= nominal.mul_f64(0.5), "retry {retry}: {b:?} under jitter floor");
                assert!(b <= nominal, "retry {retry}: {b:?} over nominal {nominal:?}");
            }
        }
        // Same seed, same schedule: determinism for reproducible chaos runs.
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let sched_a: Vec<Duration> = (1..5).map(|r| policy.backoff(r, &mut a)).collect();
        let sched_b: Vec<Duration> = (1..5).map(|r| policy.backoff(r, &mut b)).collect();
        assert_eq!(sched_a, sched_b);
    }

    #[test]
    fn retry_client_exhausts_budget_against_a_dead_address() {
        // Nothing listens on this port (bound but not accepting is racy;
        // an unroutable connect on loopback fails fast with refused).
        let policy = RetryPolicy {
            max_attempts: 3,
            retry_budget: 2,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(200),
            ..Default::default()
        };
        let mut client = RetryClient::with_policy("127.0.0.1:1", policy);
        let err = client.request(&Request::Stats).unwrap_err();
        // ConnectionRefused is not retryable (nothing is listening), so
        // the budget stays intact and the error surfaces immediately.
        assert!(matches!(err, ClientError::Io(_)), "got {err:?}");
        assert_eq!(client.retries_left(), 2);
        assert!(!client.is_connected());
    }
}
