//! A small synchronous client for the dls-serve protocol.
//!
//! One [`ServeClient`] wraps one TCP connection and speaks strict
//! request/response; open several clients for concurrent requests (that is
//! what makes the server coalesce). Methods return the server's typed
//! [`Response`] — including `Busy` / `TimedOut` — rather than flattening
//! everything into errors, so callers can implement their own retry
//! policy.

use crate::proto::{decode_response, encode_request, read_frame, write_frame, Request, Response};
use dls_sparse::SparseVec;
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected client.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ServeClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self { reader: BufReader::new(stream.try_clone()?), writer: BufWriter::new(stream) })
    }

    /// Bounds how long a single [`ServeClient::request`] may wait on the
    /// socket for its response; `None` waits indefinitely.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        write_frame(&mut self.writer, &encode_request(req))?;
        match read_frame(&mut self.reader)? {
            Some(payload) => decode_response(&payload)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-request",
            )),
        }
    }

    /// Decision values for a batch of vectors against a named model.
    /// `deadline_ms = 0` uses the server default.
    pub fn predict(
        &mut self,
        model: &str,
        vectors: Vec<SparseVec>,
        deadline_ms: u32,
    ) -> std::io::Result<Response> {
        self.request(&Request::Predict { model: model.to_string(), deadline_ms, vectors })
    }

    /// Asks the scheduler to pick a layout for an explicit matrix.
    pub fn schedule(
        &mut self,
        strategy: &str,
        rows: u64,
        cols: u64,
        entries: Vec<(u64, u64, f64)>,
    ) -> std::io::Result<Response> {
        self.request(&Request::Schedule { strategy: strategy.to_string(), rows, cols, entries })
    }

    /// Fetches the telemetry snapshot JSON.
    pub fn stats(&mut self) -> std::io::Result<String> {
        match self.request(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected Stats, got {other:?}"),
            )),
        }
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> std::io::Result<Response> {
        self.request(&Request::Shutdown)
    }
}
