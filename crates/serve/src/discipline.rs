//! Pluggable queue disciplines: *when* to drain a model's queue and *what*
//! a sweep may contain.
//!
//! [`QueueDiscipline`] is an open trait, mirroring the workspace's
//! `FormatSelector` redesign: the executor asks `decide` on every pass
//! over a non-empty queue and either waits (letting the gather window
//! coalesce more arrivals into one blocked SMSV sweep) or drains per the
//! returned [`DrainPlan`]. Disciplines are stateless — the gather window
//! is measured from the oldest queued job's enqueue time, so a decision
//! can be recomputed from the pending snapshot alone.
//!
//! Three disciplines ship, in ascending awareness (mirroring the FIFO →
//! priority → batch-aware ladder of the ML-workload-scheduler exemplar):
//!
//! | discipline | order | gather window | batch cap |
//! |---|---|---|---|
//! | [`Fifo`] | arrival | always held | none |
//! | [`StrictPriority`] | interactive first | skipped when interactive queued | none |
//! | [`SloAware`] | interactive first | held only while every queued interactive deadline is safe | leftover after interactive |

use crate::proto::RequestClass;
use crate::queue::{DrainOrder, DrainPlan, JobMeta};
use std::time::{Duration, Instant};

/// Everything a discipline may consult besides the pending jobs.
#[derive(Debug, Clone, Copy)]
pub struct DisciplineCtx {
    /// The decision instant.
    pub now: Instant,
    /// Configured gather window (how long a sweep may wait for arrivals).
    pub gather: Duration,
    /// Weight budget of one sweep (vectors per blocked kernel launch).
    pub max_block: usize,
    /// Predicted duration of one full sweep against this model, from the
    /// learned latency estimator; zero when no estimate is available.
    /// [`SloAware`] subtracts it from interactive slack so a sweep started
    /// "in time" also *finishes* in time.
    pub est_block: Duration,
}

/// A discipline's verdict for one non-empty queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Leave the queue untouched for up to this long (new arrivals or the
    /// elapsed window trigger a fresh decision).
    Wait(Duration),
    /// Drain one sweep now, per the plan.
    Drain(DrainPlan),
}

/// When and how to drain a queue. Implementations must be cheap — `decide`
/// runs on every worker pass — and must eventually drain any non-empty
/// queue (a `Wait` is always bounded by the gather window).
pub trait QueueDiscipline: Send + Sync {
    /// Stable lower-case name (CLI knob, stats, bench labels).
    fn name(&self) -> &'static str;

    /// Decides for one queue. `pending` is non-empty, in arrival order.
    fn decide(&self, pending: &[JobMeta], ctx: &DisciplineCtx) -> Decision;

    /// The queued weight that would run *before* a new job of `class`,
    /// for predictive admission. Defaults to everything pending (FIFO
    /// semantics); priority-ordered disciplines override so an interactive
    /// arrival is not charged for the batch backlog it will jump.
    fn queue_ahead(&self, pending: &[JobMeta], class: RequestClass) -> usize {
        let _ = class;
        pending.iter().map(|m| m.weight).sum()
    }
}

fn total_weight(pending: &[JobMeta]) -> usize {
    pending.iter().map(|m| m.weight).sum()
}

fn class_weight(pending: &[JobMeta], class: RequestClass) -> usize {
    pending.iter().filter(|m| m.class == class).map(|m| m.weight).sum()
}

/// Time left in the gather window, measured from the oldest queued job.
fn gather_remaining(pending: &[JobMeta], ctx: &DisciplineCtx) -> Duration {
    let oldest = pending.iter().map(|m| m.enqueued).min().expect("pending is non-empty");
    (oldest + ctx.gather).saturating_duration_since(ctx.now)
}

fn priority_ahead(pending: &[JobMeta], class: RequestClass) -> usize {
    match class {
        // An interactive arrival only queues behind other interactive jobs.
        RequestClass::Interactive => class_weight(pending, RequestClass::Interactive),
        RequestClass::Batch => total_weight(pending),
    }
}

/// Arrival-order drains with an unconditional gather window — the
/// pre-redesign executor behaviour, kept as the baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl QueueDiscipline for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn decide(&self, pending: &[JobMeta], ctx: &DisciplineCtx) -> Decision {
        if total_weight(pending) < ctx.max_block {
            let remaining = gather_remaining(pending, ctx);
            if !remaining.is_zero() {
                return Decision::Wait(remaining);
            }
        }
        Decision::Drain(DrainPlan {
            order: DrainOrder::Arrival,
            max_weight: ctx.max_block,
            max_batch_weight: ctx.max_block,
        })
    }
}

/// Interactive jobs preempt the queue order and skip the gather window
/// entirely; batch-only backlogs behave like [`Fifo`]. The bluntest
/// latency-first policy — minimal interactive queueing delay, but batch
/// coalescing (and batch progress under sustained interactive load)
/// suffers.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrictPriority;

impl QueueDiscipline for StrictPriority {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn decide(&self, pending: &[JobMeta], ctx: &DisciplineCtx) -> Decision {
        let any_interactive = pending.iter().any(|m| m.class == RequestClass::Interactive);
        if !any_interactive && total_weight(pending) < ctx.max_block {
            let remaining = gather_remaining(pending, ctx);
            if !remaining.is_zero() {
                return Decision::Wait(remaining);
            }
        }
        Decision::Drain(DrainPlan {
            order: DrainOrder::InteractiveFirst,
            max_weight: ctx.max_block,
            max_batch_weight: ctx.max_block,
        })
    }

    fn queue_ahead(&self, pending: &[JobMeta], class: RequestClass) -> usize {
        priority_ahead(pending, class)
    }
}

/// The SLO-aware batch former: holds the gather window **only while no
/// queued interactive request would miss its deadline** — slack is each
/// interactive job's `deadline - now`, discounted by the predicted sweep
/// duration so the sweep finishes (not merely starts) inside the SLO.
/// Drains interactive-first, and batch work may only fill the sweep
/// capacity left over after every queued interactive job, so a batch
/// flood never displaces interactive vectors from a block.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloAware;

impl QueueDiscipline for SloAware {
    fn name(&self) -> &'static str {
        "slo"
    }

    fn decide(&self, pending: &[JobMeta], ctx: &DisciplineCtx) -> Decision {
        let mut hold = gather_remaining(pending, ctx);
        if total_weight(pending) >= ctx.max_block {
            hold = Duration::ZERO;
        }
        // Shrink the hold to the tightest interactive slack.
        for m in pending.iter().filter(|m| m.class == RequestClass::Interactive) {
            let slack = m.deadline.saturating_duration_since(ctx.now).saturating_sub(ctx.est_block);
            hold = hold.min(slack);
        }
        if !hold.is_zero() {
            return Decision::Wait(hold);
        }
        let interactive = class_weight(pending, RequestClass::Interactive).min(ctx.max_block);
        Decision::Drain(DrainPlan {
            order: DrainOrder::InteractiveFirst,
            max_weight: ctx.max_block,
            max_batch_weight: ctx.max_block - interactive,
        })
    }

    fn queue_ahead(&self, pending: &[JobMeta], class: RequestClass) -> usize {
        priority_ahead(pending, class)
    }
}

/// The disciplines this crate ships, by [`QueueDiscipline::name`].
pub const DISCIPLINES: [&str; 3] = ["fifo", "priority", "slo"];

/// Parses a discipline name (CLI / bench knob).
pub fn parse_discipline(name: &str) -> Result<std::sync::Arc<dyn QueueDiscipline>, String> {
    match name {
        "fifo" => Ok(std::sync::Arc::new(Fifo)),
        "priority" => Ok(std::sync::Arc::new(StrictPriority)),
        "slo" => Ok(std::sync::Arc::new(SloAware)),
        other => Err(format!("unknown queue discipline {other:?} (expected fifo|priority|slo)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(class: RequestClass, weight: usize, age: Duration, slack: Duration) -> JobMeta {
        let now = Instant::now();
        JobMeta { class, weight, enqueued: now - age, deadline: now + slack, seq: 0 }
    }

    fn ctx(gather_ms: u64, max_block: usize, est_block: Duration) -> DisciplineCtx {
        DisciplineCtx {
            now: Instant::now(),
            gather: Duration::from_millis(gather_ms),
            max_block,
            est_block,
        }
    }

    const LONG: Duration = Duration::from_secs(5);

    #[test]
    fn fifo_waits_out_the_gather_window_then_drains_in_arrival_order() {
        let ctx = ctx(10, 32, Duration::ZERO);
        let fresh = [meta(RequestClass::Interactive, 1, Duration::ZERO, LONG)];
        match Fifo.decide(&fresh, &ctx) {
            // Bounded by the gather window (small epsilon: the meta was
            // stamped a hair after ctx.now).
            Decision::Wait(d) => assert!(d <= Duration::from_millis(11) && !d.is_zero()),
            other => panic!("expected Wait, got {other:?}"),
        }
        let aged = [meta(RequestClass::Interactive, 1, Duration::from_millis(20), LONG)];
        assert_eq!(
            Fifo.decide(&aged, &ctx),
            Decision::Drain(DrainPlan {
                order: DrainOrder::Arrival,
                max_weight: 32,
                max_batch_weight: 32,
            })
        );
        // A full block's worth of weight never waits.
        let heavy = [meta(RequestClass::Batch, 32, Duration::ZERO, LONG)];
        assert!(matches!(Fifo.decide(&heavy, &ctx), Decision::Drain(_)));
    }

    #[test]
    fn strict_priority_skips_the_gather_window_for_interactive() {
        let ctx = ctx(10, 32, Duration::ZERO);
        let mixed = [
            meta(RequestClass::Batch, 4, Duration::ZERO, LONG),
            meta(RequestClass::Interactive, 1, Duration::ZERO, LONG),
        ];
        match StrictPriority.decide(&mixed, &ctx) {
            Decision::Drain(plan) => assert_eq!(plan.order, DrainOrder::InteractiveFirst),
            other => panic!("expected Drain, got {other:?}"),
        }
        // Batch-only backlogs still coalesce.
        let batch_only = [meta(RequestClass::Batch, 4, Duration::ZERO, LONG)];
        assert!(matches!(StrictPriority.decide(&batch_only, &ctx), Decision::Wait(_)));
    }

    #[test]
    fn slo_aware_holds_only_while_interactive_slack_allows() {
        let ctx = ctx(10, 32, Duration::from_millis(2));
        // Comfortable slack: the window is held.
        let relaxed = [
            meta(RequestClass::Batch, 4, Duration::ZERO, LONG),
            meta(RequestClass::Interactive, 1, Duration::ZERO, Duration::from_secs(1)),
        ];
        assert!(matches!(SloAware.decide(&relaxed, &ctx), Decision::Wait(_)));
        // Slack inside the predicted sweep time: drain immediately, and
        // batch may only fill what interactive leaves free.
        let urgent = [
            meta(RequestClass::Batch, 4, Duration::ZERO, LONG),
            meta(RequestClass::Interactive, 2, Duration::ZERO, Duration::from_millis(1)),
        ];
        match SloAware.decide(&urgent, &ctx) {
            Decision::Drain(plan) => {
                assert_eq!(plan.order, DrainOrder::InteractiveFirst);
                assert_eq!(plan.max_batch_weight, 30);
            }
            other => panic!("expected Drain, got {other:?}"),
        }
        // A Wait is never longer than the gather window (plus the stamp
        // epsilon) even when interactive slack is huge.
        match SloAware.decide(&relaxed, &ctx) {
            Decision::Wait(d) => assert!(d <= Duration::from_millis(11)),
            other => panic!("expected Wait, got {other:?}"),
        }
    }

    #[test]
    fn queue_ahead_reflects_each_discipline_ordering() {
        let pending = [
            meta(RequestClass::Batch, 10, Duration::ZERO, LONG),
            meta(RequestClass::Interactive, 2, Duration::ZERO, LONG),
        ];
        assert_eq!(Fifo.queue_ahead(&pending, RequestClass::Interactive), 12);
        assert_eq!(StrictPriority.queue_ahead(&pending, RequestClass::Interactive), 2);
        assert_eq!(SloAware.queue_ahead(&pending, RequestClass::Interactive), 2);
        assert_eq!(SloAware.queue_ahead(&pending, RequestClass::Batch), 12);
    }

    #[test]
    fn discipline_names_parse() {
        for name in DISCIPLINES {
            assert_eq!(parse_discipline(name).unwrap().name(), name);
        }
        assert!(parse_discipline("lifo").is_err());
    }
}
