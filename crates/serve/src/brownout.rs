//! Brown-out: planned partial degradation under overload.
//!
//! When the interactive SLO violation rate or queue pressure crosses its
//! threshold, the controller activates and the executor responds on three
//! axes at once:
//!
//! 1. **Shed batch-class load** — new batch submissions are refused with
//!    `Busy` at admission, freeing queue capacity and worker time for
//!    interactive traffic (batch callers are built to retry).
//! 2. **Shrink the gather window** — coalescing trades latency for
//!    throughput; under overload that trade is backwards, so the window
//!    divides by [`BrownoutConfig::gather_divisor`].
//! 3. **Swap the latency estimator** — predictive admission switches from
//!    the learned tree to the pessimistic closed-form
//!    [`crate::latency::AnalyticLatencyEstimator`], refusing marginal
//!    requests *before* they queue (and decoupling admission from the
//!    learned path, which overload itself may have invalidated).
//!
//! Entry and exit use separate thresholds (hysteresis) plus a minimum
//! dwell time, so a violation burst cannot flap the controller on and off
//! every scheduling tick. Decisions come from a sliding window of recent
//! interactive completions, not lifetime totals — a long healthy history
//! must not mask a current overload.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Thresholds and shaping for the brown-out controller.
#[derive(Debug, Clone)]
pub struct BrownoutConfig {
    /// Master switch; `false` keeps the controller dormant.
    pub enabled: bool,
    /// Enter when the windowed interactive SLO violation rate crosses
    /// this.
    pub enter_violation_rate: f64,
    /// Enter when interactive queue pressure (depth / capacity) crosses
    /// this.
    pub enter_queue_pressure: f64,
    /// Exit requires the windowed violation rate back under this
    /// (hysteresis: strictly below [`BrownoutConfig::enter_violation_rate`]).
    pub exit_violation_rate: f64,
    /// Exit requires queue pressure back under this.
    pub exit_queue_pressure: f64,
    /// Interactive completions in the sliding decision window.
    pub window: usize,
    /// Minimum time in either state before switching again.
    pub min_dwell: Duration,
    /// While active, the gather window divides by this.
    pub gather_divisor: u32,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            enter_violation_rate: 0.20,
            enter_queue_pressure: 0.75,
            exit_violation_rate: 0.05,
            exit_queue_pressure: 0.25,
            window: 64,
            min_dwell: Duration::from_millis(50),
            gather_divisor: 8,
        }
    }
}

/// What changed on one [`BrownoutController::observe`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrownoutTransition {
    /// State unchanged.
    None,
    /// The controller just activated.
    Entered,
    /// The controller just deactivated.
    Exited,
}

/// The overload state machine. One per executor, consulted under the
/// executor's existing locking (no interior synchronization needed).
#[derive(Debug)]
pub struct BrownoutController {
    config: BrownoutConfig,
    /// Recent interactive completions: `true` = violated its SLO.
    window: VecDeque<bool>,
    violations: usize,
    active: bool,
    last_switch: Option<Instant>,
}

impl BrownoutController {
    /// A dormant controller with the given thresholds.
    pub fn new(config: BrownoutConfig) -> Self {
        Self { config, window: VecDeque::new(), violations: 0, active: false, last_switch: None }
    }

    /// The active configuration.
    pub fn config(&self) -> &BrownoutConfig {
        &self.config
    }

    /// Whether the service is currently browned out.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// SLO violation rate over the sliding window (0 while empty).
    pub fn windowed_violation_rate(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.violations as f64 / self.window.len() as f64
        }
    }

    /// Records one interactive completion (answered or timed out) and
    /// re-evaluates the state against `queue_pressure` (interactive depth
    /// over capacity, in `[0, 1]`).
    pub fn observe(
        &mut self,
        violated: bool,
        queue_pressure: f64,
        now: Instant,
    ) -> BrownoutTransition {
        if !self.config.enabled {
            return BrownoutTransition::None;
        }
        self.window.push_back(violated);
        self.violations += usize::from(violated);
        while self.window.len() > self.config.window.max(1) {
            if self.window.pop_front() == Some(true) {
                self.violations -= 1;
            }
        }
        self.evaluate(queue_pressure, now)
    }

    /// Re-evaluates without a new completion (e.g. on a queue-pressure
    /// spike while nothing finishes — exactly when brown-out must engage).
    pub fn evaluate(&mut self, queue_pressure: f64, now: Instant) -> BrownoutTransition {
        if !self.config.enabled {
            return BrownoutTransition::None;
        }
        if let Some(t) = self.last_switch {
            if now.duration_since(t) < self.config.min_dwell {
                return BrownoutTransition::None;
            }
        }
        let rate = self.windowed_violation_rate();
        if !self.active {
            if rate >= self.config.enter_violation_rate
                || queue_pressure >= self.config.enter_queue_pressure
            {
                self.active = true;
                self.last_switch = Some(now);
                return BrownoutTransition::Entered;
            }
        } else if rate <= self.config.exit_violation_rate
            && queue_pressure <= self.config.exit_queue_pressure
        {
            self.active = false;
            self.last_switch = Some(now);
            // Exit with a clean slate: the window's overload history would
            // otherwise re-trigger entry on the next observation.
            self.window.clear();
            self.violations = 0;
            return BrownoutTransition::Exited;
        }
        BrownoutTransition::None
    }

    /// The gather window admission should use right now.
    pub fn effective_gather(&self, configured: Duration) -> Duration {
        if self.active {
            configured / self.config.gather_divisor.max(1)
        } else {
            configured
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> BrownoutConfig {
        BrownoutConfig { window: 10, min_dwell: Duration::ZERO, ..Default::default() }
    }

    #[test]
    fn enters_on_violation_rate_and_exits_with_hysteresis() {
        let mut c = BrownoutController::new(quick_config());
        let t = Instant::now();
        // 10 clean completions: stays dormant.
        for _ in 0..10 {
            assert_eq!(c.observe(false, 0.0, t), BrownoutTransition::None);
        }
        // Violations push the windowed rate past 20%.
        assert_eq!(c.observe(true, 0.0, t), BrownoutTransition::None); // 1/10
        assert_eq!(c.observe(true, 0.0, t), BrownoutTransition::Entered); // 2/10
        assert!(c.is_active());
        // One clean completion is not enough to exit (rate still > 5%).
        assert_eq!(c.observe(false, 0.0, t), BrownoutTransition::None);
        // A run of clean completions flushes the violations out of the
        // window and releases the brown-out.
        let mut exited = false;
        for _ in 0..10 {
            if c.observe(false, 0.0, t) == BrownoutTransition::Exited {
                exited = true;
                break;
            }
        }
        assert!(exited);
        assert!(!c.is_active());
        assert_eq!(c.windowed_violation_rate(), 0.0, "window cleared on exit");
    }

    #[test]
    fn enters_on_queue_pressure_alone() {
        let mut c = BrownoutController::new(quick_config());
        let t = Instant::now();
        assert_eq!(c.evaluate(0.5, t), BrownoutTransition::None);
        assert_eq!(c.evaluate(0.9, t), BrownoutTransition::Entered);
        // High pressure holds it active even with a clean window.
        assert_eq!(c.evaluate(0.5, t), BrownoutTransition::None);
        assert_eq!(c.evaluate(0.1, t), BrownoutTransition::Exited);
    }

    #[test]
    fn dwell_time_prevents_flapping() {
        let config = BrownoutConfig {
            window: 10,
            min_dwell: Duration::from_secs(3600),
            ..Default::default()
        };
        let mut c = BrownoutController::new(config);
        let t = Instant::now();
        assert_eq!(c.evaluate(1.0, t), BrownoutTransition::Entered);
        // Pressure collapses immediately, but the dwell holds the state.
        assert_eq!(c.evaluate(0.0, t), BrownoutTransition::None);
        assert!(c.is_active());
        // After the dwell lapses, the exit goes through.
        assert_eq!(c.evaluate(0.0, t + Duration::from_secs(3601)), BrownoutTransition::Exited);
    }

    #[test]
    fn disabled_controller_never_activates() {
        let config = BrownoutConfig { enabled: false, ..quick_config() };
        let mut c = BrownoutController::new(config);
        let t = Instant::now();
        for _ in 0..100 {
            assert_eq!(c.observe(true, 1.0, t), BrownoutTransition::None);
        }
        assert!(!c.is_active());
    }

    #[test]
    fn effective_gather_shrinks_only_while_active() {
        let mut c = BrownoutController::new(quick_config());
        let g = Duration::from_millis(8);
        assert_eq!(c.effective_gather(g), g);
        c.evaluate(1.0, Instant::now());
        assert_eq!(c.effective_gather(g), Duration::from_millis(1));
    }
}
