//! Learned per-model latency prediction for admission control.
//!
//! Reuses `dls-learn`'s CART induction, re-targeted at regression
//! ([`dls_learn::RegressionTree`]): sweep latency is fitted as
//! `log2(nanoseconds)` over the model's nine influencing parameters
//! (the paper's Table IV features, via [`dls_learn::featurize`]) plus
//! `log2(batch size)`. Each served model is calibrated once at executor
//! start-up by timing real blocked sweeps at a handful of batch sizes —
//! cheap (microseconds per probe) because the probes are single-nnz
//! vectors against the model's own scheduled matrix.
//!
//! The estimator feeds two consumers:
//!
//! * **Predictive admission** — the executor projects a new request's
//!   completion (queued weight ahead, chunked into sweeps, plus its own
//!   sweep and the gather window) and refuses with `Busy` *at submit time*
//!   when the projection already overshoots the deadline, instead of
//!   letting the request queue up only to time out.
//! * **[`crate::discipline::SloAware`]** — the predicted full-block sweep
//!   duration discounts interactive slack, so a sweep started "in time"
//!   also finishes in time.

use crate::registry::ServedModel;
use dls_learn::{featurize, RegressParams, RegressionTree, NUM_FEATURES};
use dls_sparse::SparseVec;
use dls_svm::PredictWorkspace;
use std::time::{Duration, Instant};

/// Feature width: the nine-parameter matrix fingerprint (plus density)
/// from `dls-learn`, then `log2(batch)`.
pub const LATENCY_FEATURES: usize = NUM_FEATURES + 1;

/// Batch sizes probed per model during calibration.
pub const CALIBRATION_BATCHES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// One calibration observation: feature vector and `log2(nanoseconds)`.
pub type LatencySample = (Vec<f64>, f64);

/// Builds the estimator's feature vector for one (model, batch) pair.
pub fn latency_features(model_feats: &[f64; NUM_FEATURES], batch: usize) -> Vec<f64> {
    let mut x = model_feats.to_vec();
    x.push((batch.max(1) as f64).log2());
    x
}

/// Times real sweeps of `served`'s scheduled matrix at each calibration
/// batch size. Returns an empty vec for constant models (no support
/// matrix — nothing to predict, and nothing worth admission-controlling).
pub fn calibrate_model(served: &ServedModel, ws: &mut PredictWorkspace) -> Vec<LatencySample> {
    let Some(mf) = served.matrix_features() else {
        return Vec::new();
    };
    let model_feats = featurize(mf);
    let dim = served.dim().max(1);
    let mut samples = Vec::with_capacity(CALIBRATION_BATCHES.len());
    for &batch in &CALIBRATION_BATCHES {
        let probes: Vec<SparseVec> =
            (0..batch).map(|i| SparseVec::new(dim, vec![i % dim], vec![1.0])).collect();
        served.predict(&probes, ws); // warm caches / first-touch
        let mut best = u64::MAX;
        for _ in 0..2 {
            let start = Instant::now();
            served.predict(&probes, ws);
            best = best.min(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        samples.push((latency_features(&model_feats, batch), (best.max(1) as f64).log2()));
    }
    samples
}

/// A regression tree over [`LATENCY_FEATURES`]-wide vectors predicting
/// `log2(sweep nanoseconds)`.
#[derive(Debug, Clone)]
pub struct TreeLatencyEstimator {
    tree: RegressionTree,
}

impl TreeLatencyEstimator {
    /// Fits the tree on calibration samples (typically the concatenation
    /// of every served model's [`calibrate_model`] output). Returns `None`
    /// on an empty sample set — admission control then stays disabled.
    pub fn fit(samples: &[LatencySample]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let xs: Vec<Vec<f64>> = samples.iter().map(|(x, _)| x.clone()).collect();
        let ys: Vec<f64> = samples.iter().map(|&(_, y)| y).collect();
        let tree = RegressionTree::train(LATENCY_FEATURES, &xs, &ys, RegressParams::default());
        Some(Self { tree })
    }

    /// The fitted tree, for structural checks.
    pub fn tree(&self) -> &RegressionTree {
        &self.tree
    }

    /// Predicted duration of one sweep of `batch` vectors against a model
    /// with the given feature fingerprint.
    pub fn predict_sweep(&self, model_feats: &[f64; NUM_FEATURES], batch: usize) -> Duration {
        let log2_ns = self.tree.predict(&latency_features(model_feats, batch));
        // 2^50 ns ≈ 13 days: a safe ceiling against pathological fits.
        Duration::from_nanos(log2_ns.clamp(0.0, 50.0).exp2() as u64)
    }

    /// Predicted time to execute `total_weight` queued vectors, chunked
    /// into sweeps of at most `max_block` — the backlog term of the
    /// admission projection.
    pub fn predict_backlog(
        &self,
        model_feats: &[f64; NUM_FEATURES],
        total_weight: usize,
        max_block: usize,
    ) -> Duration {
        let max_block = max_block.max(1);
        let full = total_weight / max_block;
        let rem = total_weight % max_block;
        let mut out = self.predict_sweep(model_feats, max_block) * full as u32;
        if rem > 0 {
            out += self.predict_sweep(model_feats, rem);
        }
        out
    }
}

/// A closed-form fallback estimator: no calibration, no tree — just a
/// conservative work model over the matrix fingerprint, in the spirit of
/// the lightweight analytic selectors (Elafrou et al.) the ROADMAP cites
/// as the degradation target. One blocked sweep of `batch` vectors visits
/// every stored nonzero once per vector, so
/// `ns ≈ base + nnz · batch · ns_per_fma`. The brown-out controller swaps
/// this in when the learned tree's own serving path is suspect or the
/// service is overloaded: it always answers, never needs the workers, and
/// deliberately over-estimates so admission turns pessimistic exactly when
/// the service is struggling.
#[derive(Debug, Clone)]
pub struct AnalyticLatencyEstimator {
    /// Fixed per-sweep overhead in nanoseconds.
    pub base_ns: f64,
    /// Nanoseconds per (nonzero × vector) multiply-accumulate.
    pub ns_per_fma: f64,
}

impl Default for AnalyticLatencyEstimator {
    fn default() -> Self {
        // ~1 ns per FMA is a few× worse than any cache-resident sweep on a
        // current host: pessimistic by design.
        Self { base_ns: 2_000.0, ns_per_fma: 1.0 }
    }
}

impl AnalyticLatencyEstimator {
    /// Predicted duration of one sweep of `batch` vectors. Same signature
    /// as [`TreeLatencyEstimator::predict_sweep`], so the executor can
    /// swap estimators without reshaping its admission projection.
    pub fn predict_sweep(&self, model_feats: &[f64; NUM_FEATURES], batch: usize) -> Duration {
        // featurize() stores log2(nnz + 1) at index 2.
        let nnz = model_feats[2].exp2() - 1.0;
        let ns = self.base_ns + nnz.max(0.0) * batch.max(1) as f64 * self.ns_per_fma;
        Duration::from_nanos(ns.clamp(0.0, 1e18) as u64)
    }

    /// Predicted time to execute `total_weight` queued vectors, chunked
    /// into sweeps of at most `max_block`.
    pub fn predict_backlog(
        &self,
        model_feats: &[f64; NUM_FEATURES],
        total_weight: usize,
        max_block: usize,
    ) -> Duration {
        let max_block = max_block.max(1);
        let full = total_weight / max_block;
        let rem = total_weight % max_block;
        let mut out = self.predict_sweep(model_feats, max_block) * full as u32;
        if rem > 0 {
            out += self.predict_sweep(model_feats, rem);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_core::LayoutScheduler;
    use dls_svm::{KernelKind, SvmModel};

    fn toy_served() -> ServedModel {
        let svs: Vec<SparseVec> =
            (0..4).map(|i| SparseVec::new(8, vec![i, i + 4], vec![1.0, -0.5])).collect();
        let model = SvmModel::new(KernelKind::Linear, svs, vec![1.0, -1.0, 0.5, -0.25], 0.1);
        ServedModel::new("toy", model, &LayoutScheduler::new())
    }

    #[test]
    fn calibration_produces_one_sample_per_batch_size() {
        let served = toy_served();
        let mut ws = PredictWorkspace::new();
        let samples = calibrate_model(&served, &mut ws);
        assert_eq!(samples.len(), CALIBRATION_BATCHES.len());
        for (x, y) in &samples {
            assert_eq!(x.len(), LATENCY_FEATURES);
            assert!(*y > 0.0, "log2(ns) must be positive, got {y}");
        }
        // The batch feature varies across samples; the model fingerprint
        // does not.
        assert_ne!(samples[0].0.last(), samples[5].0.last());
        assert_eq!(samples[0].0[..NUM_FEATURES], samples[5].0[..NUM_FEATURES]);
    }

    #[test]
    fn constant_models_yield_no_samples() {
        let served = ServedModel::new(
            "const",
            SvmModel::new(KernelKind::Linear, vec![], vec![], 1.0),
            &LayoutScheduler::new(),
        );
        assert!(calibrate_model(&served, &mut PredictWorkspace::new()).is_empty());
        assert!(TreeLatencyEstimator::fit(&[]).is_none());
    }

    #[test]
    fn fitted_estimator_interpolates_its_calibration_curve() {
        let served = toy_served();
        let mut ws = PredictWorkspace::new();
        let samples = calibrate_model(&served, &mut ws);
        let est = TreeLatencyEstimator::fit(&samples).unwrap();
        let feats = featurize(served.matrix_features().unwrap());
        // Exact recall at the calibrated points (leaves are per-sample).
        for (&batch, (_, y)) in CALIBRATION_BATCHES.iter().zip(&samples) {
            let got = est.predict_sweep(&feats, batch).as_nanos() as f64;
            let want = y.exp2();
            assert!((got - want).abs() <= want * 0.5 + 2.0, "batch {batch}: {got} vs {want}");
        }
        // Predictions stay sane between and beyond calibrated sizes.
        assert!(est.predict_sweep(&feats, 3) >= est.predict_sweep(&feats, 1) / 4);
        assert!(est.predict_sweep(&feats, 64) < Duration::from_secs(1));
    }

    #[test]
    fn backlog_projection_chunks_into_sweeps() {
        let feats = [0.0; NUM_FEATURES];
        // A synthetic constant-latency estimator: every sweep ≈ 2^10 ns.
        let samples: Vec<LatencySample> =
            (1..=4).map(|b| (latency_features(&feats, b), 10.0)).collect();
        let est = TreeLatencyEstimator::fit(&samples).unwrap();
        let one = est.predict_sweep(&feats, 4);
        // 10 vectors in blocks of 4 = 2 full sweeps + 1 remainder sweep.
        let backlog = est.predict_backlog(&feats, 10, 4);
        assert!(backlog >= one * 2, "{backlog:?} vs {one:?}");
        assert!(backlog <= one * 4, "{backlog:?} vs {one:?}");
        assert_eq!(est.predict_backlog(&feats, 0, 4), Duration::ZERO);
    }

    #[test]
    fn analytic_estimator_scales_with_nnz_and_batch() {
        let est = AnalyticLatencyEstimator::default();
        let feats_of = |nnz: f64| {
            let mut f = [0.0; NUM_FEATURES];
            f[2] = (nnz + 1.0).log2();
            f
        };
        let small = est.predict_sweep(&feats_of(100.0), 1);
        let bigger_matrix = est.predict_sweep(&feats_of(10_000.0), 1);
        let bigger_batch = est.predict_sweep(&feats_of(100.0), 32);
        assert!(bigger_matrix > small, "{bigger_matrix:?} vs {small:?}");
        assert!(bigger_batch > small, "{bigger_batch:?} vs {small:?}");
        // Backlog chunks like the tree's projection.
        let one = est.predict_sweep(&feats_of(100.0), 4);
        let backlog = est.predict_backlog(&feats_of(100.0), 10, 4);
        assert!(backlog >= one * 2 && backlog <= one * 4, "{backlog:?} vs {one:?}");
        assert_eq!(est.predict_backlog(&feats_of(100.0), 0, 4), Duration::ZERO);
        // Degenerate fingerprints never panic or go negative.
        assert!(est.predict_sweep(&[0.0; NUM_FEATURES], 1) >= Duration::ZERO);
    }
}
