//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message is one frame: a 4-byte little-endian payload length
//! followed by the payload. The payload starts with a one-byte protocol
//! version and a one-byte message tag; the body is a flat LE encoding of
//! the message fields (no self-description — both ends share this module).
//!
//! ```text
//! frame      := u32 len | payload            len = payload bytes, <= MAX_FRAME_LEN
//! payload v3 := u8 version | u64 frame_id | u8 tag | body
//! payload v1/v2 := u8 version | u8 tag | body
//! string     := u32 len | utf-8 bytes
//! vec<T>     := u32 count | T*count
//! sparse     := u64 dim | vec<u64> indices | vec<f64> values (parallel arrays)
//! ```
//!
//! **Versioning.** Three versions are live. v3 (current) prefixes every
//! message with a `frame_id` so one connection can *pipeline* many
//! in-flight requests: the server echoes the id on the matching response,
//! which may arrive out of order. v2 added a request class and a
//! per-request SLO on `Predict`:
//!
//! ```text
//! Predict v2/v3 := string model | u32 deadline_ms | u8 class | u32 slo_us | vec<sparse>
//! Predict v1    := string model | u32 deadline_ms | vec<sparse>
//! ```
//!
//! v1 frames decode as [`RequestClass::Interactive`] with `slo_us = 0`
//! (meaning: fall back to the legacy deadline, then the server's per-class
//! default), and v1/v2 frames decode with `frame_id = 0` and are served
//! one-in-flight, so old clients keep working against a v3 server; the
//! server answers each request with the version it arrived in, so old
//! clients also keep *decoding*. All other message bodies are identical
//! across versions.
//!
//! The decoder is total: truncated, oversized, or malformed input yields a
//! [`ProtoError`], never a panic, and claimed element counts are checked
//! against the bytes actually present before any allocation is sized from
//! them — a frame cannot make the server allocate more than it sent.

use dls_sparse::{SparseVec, TripletMatrix};
use std::io::{Read, Write};

/// Current protocol version byte; bumped on any incompatible change.
/// v3 frames carry a `frame_id` for pipelined, out-of-order responses.
pub const PROTO_VERSION: u8 = 3;

/// The legacy protocol version (no request classes / SLOs on the wire).
pub const PROTO_V1: u8 = 1;

/// The first version with request classes / SLOs on the wire (but no
/// `frame_id`: one request in flight per connection).
pub const PROTO_V2: u8 = 2;

/// Every version this module can decode.
pub const ACCEPTED_VERSIONS: [u8; 3] = [PROTO_V1, PROTO_V2, PROTO_VERSION];

/// The traffic class a predict request belongs to. Classes are the unit
/// SLOs attach to: interactive requests expect sub-millisecond-to-
/// millisecond answers, batch scoring tolerates much more in exchange for
/// throughput. The queue disciplines in `serve::discipline` key on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RequestClass {
    /// Latency-sensitive traffic (the default, and what v1 frames map to).
    #[default]
    Interactive = 0,
    /// Throughput-oriented scoring jobs with a lenient SLO.
    Batch = 1,
}

impl RequestClass {
    /// Both classes, index-aligned with [`RequestClass::index`].
    pub const ALL: [RequestClass; 2] = [RequestClass::Interactive, RequestClass::Batch];

    /// Dense index (0 = interactive, 1 = batch) for per-class arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            RequestClass::Interactive => "interactive",
            RequestClass::Batch => "batch",
        }
    }

    fn from_wire(b: u8) -> Result<Self, ProtoError> {
        match b {
            0 => Ok(RequestClass::Interactive),
            1 => Ok(RequestClass::Batch),
            _ => Err(ProtoError::Malformed("unknown request class")),
        }
    }
}

impl std::fmt::Display for RequestClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for RequestClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interactive" | "i" => Ok(RequestClass::Interactive),
            "batch" | "b" => Ok(RequestClass::Batch),
            other => Err(format!("unknown request class: {other:?}")),
        }
    }
}

/// Hard ceiling on one frame's payload size (16 MiB). Enforced against
/// the length prefix *before* the payload buffer is allocated, so a lying
/// length from a hostile peer cannot trigger a huge allocation.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Former name of [`MAX_FRAME_LEN`].
#[deprecated(note = "renamed to MAX_FRAME_LEN")]
pub const MAX_FRAME: usize = MAX_FRAME_LEN;

/// Everything that can go wrong turning bytes into messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended before the message did.
    Truncated,
    /// A frame length prefix exceeded [`MAX_FRAME_LEN`].
    FrameTooLarge(usize),
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// Unknown message tag for the expected direction.
    BadTag(u8),
    /// A field held an invalid value (bad UTF-8, unsorted sparse indices,
    /// out-of-range dimension, trailing bytes, …).
    Malformed(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME_LEN}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::BadTag(t) => write!(f, "unknown message tag {t}"),
            ProtoError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Decision values for a batch of sparse vectors against a named model.
    Predict {
        /// Registry name of the model to query.
        model: String,
        /// Legacy per-request deadline in milliseconds from arrival; `0`
        /// means unset. Kept for v1 compatibility — when `slo_us` is set
        /// it wins. Requests still queued past their effective deadline
        /// get [`Response::TimedOut`] instead of occupying a worker.
        deadline_ms: u32,
        /// Traffic class the SLO and queue discipline key on. v1 frames
        /// decode as [`RequestClass::Interactive`].
        class: RequestClass,
        /// Per-request SLO in microseconds from arrival; `0` falls back to
        /// `deadline_ms`, then to the server's per-class default.
        slo_us: u32,
        /// The query vectors. All must share the model's feature dimension.
        vectors: Vec<SparseVec>,
    },
    /// Run the layout scheduler on a submitted matrix and report the
    /// chosen storage format.
    Schedule {
        /// Selection strategy name (`rule`, `rule-host`, `cost`,
        /// `empirical`, or a fixed format name); empty uses the server's
        /// configured scheduler.
        strategy: String,
        /// Matrix rows.
        rows: u64,
        /// Matrix columns.
        cols: u64,
        /// Explicit entries as `(row, col, value)` triplets.
        entries: Vec<(u64, u64, f64)>,
    },
    /// Telemetry snapshot of the whole service.
    Stats,
    /// Liveness and degradation summary: overall status, brown-out state,
    /// per-model health ladder. Cheaper than `Stats` and intended for
    /// probes and load balancers.
    Health,
    /// Ask the server to drain and exit gracefully.
    Shutdown,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Decision values, one per submitted vector, in submission order.
    Predictions(Vec<f64>),
    /// The scheduling decision for a submitted matrix.
    Scheduled {
        /// Chosen format name.
        format: String,
        /// One-line human-readable justification.
        reason: String,
        /// Per-candidate scores (lower is better), chosen first.
        scores: Vec<(String, f64)>,
    },
    /// Telemetry snapshot as a JSON document (schema in `serve::stats`).
    Stats(String),
    /// Backpressure: the target queue is full; retry later.
    Busy,
    /// The request's deadline expired before a worker reached it.
    TimedOut,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// The request was understood but could not be served.
    Error(String),
    /// Liveness summary as a JSON document (schema in `serve::stats`).
    Health(String),
}

// ---- low-level encoding -------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_sparse(out: &mut Vec<u8>, v: &SparseVec) {
    put_u64(out, v.dim() as u64);
    put_u32(out, v.nnz() as u32);
    for &i in v.indices() {
        put_u64(out, i as u64);
    }
    for &x in v.values() {
        put_f64(out, x);
    }
}

/// Sequential reader over a payload with totality checks.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.bytes.len() {
            return Err(ProtoError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a count of fixed-size elements, bounding it by the bytes that
    /// remain so a lying header cannot size a huge allocation.
    fn count(&mut self, elem_bytes: usize) -> Result<usize, ProtoError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_bytes) > self.bytes.len() - self.pos {
            return Err(ProtoError::Truncated);
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let n = self.count(1)?;
        std::str::from_utf8(self.take(n)?)
            .map(str::to_owned)
            .map_err(|_| ProtoError::Malformed("string is not UTF-8"))
    }

    fn sparse(&mut self) -> Result<SparseVec, ProtoError> {
        let dim = self.u64()? as usize;
        let nnz = self.count(16)?; // 8 bytes index + 8 bytes value
        let mut indices = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            indices.push(self.u64()? as usize);
        }
        let mut values = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            values.push(self.f64()?);
        }
        // Re-validate `SparseVec::new`'s panics as protocol errors.
        if indices.windows(2).any(|w| w[0] >= w[1]) {
            return Err(ProtoError::Malformed("sparse indices not strictly increasing"));
        }
        if indices.last().is_some_and(|&last| last >= dim) {
            return Err(ProtoError::Malformed("sparse index out of bounds"));
        }
        Ok(SparseVec::new(dim, indices, values))
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed("trailing bytes after message"))
        }
    }
}

// ---- message codecs -----------------------------------------------------

const REQ_PREDICT: u8 = 1;
const REQ_SCHEDULE: u8 = 2;
const REQ_STATS: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;
const REQ_HEALTH: u8 = 5;

const RESP_PREDICTIONS: u8 = 129;
const RESP_SCHEDULED: u8 = 130;
const RESP_STATS: u8 = 131;
const RESP_BUSY: u8 = 132;
const RESP_TIMED_OUT: u8 = 133;
const RESP_SHUTTING_DOWN: u8 = 134;
const RESP_ERROR: u8 = 135;
const RESP_HEALTH: u8 = 136;

/// Encodes a request into a current-version frame payload with
/// `frame_id = 0` (version + frame id + tag + body).
pub fn encode_request(req: &Request) -> Vec<u8> {
    encode_request_version(req, PROTO_VERSION)
}

/// Encodes a request at an explicit protocol version with `frame_id = 0`.
/// See [`encode_request_framed`] for lossiness and panics.
pub fn encode_request_version(req: &Request, version: u8) -> Vec<u8> {
    encode_request_framed(req, version, 0)
}

/// Encodes a request at an explicit protocol version and frame id.
/// Encoding below v3 is lossy: the frame id is dropped (those versions
/// are one-in-flight, so a receiver reconstructs `0`), and v1 also drops
/// the `Predict` class and SLO (a v1 receiver will reconstruct
/// `Interactive` / `slo_us = 0`) — exactly what a legacy client binary
/// would send. Panics on an unknown version; callers pick from
/// [`ACCEPTED_VERSIONS`].
pub fn encode_request_framed(req: &Request, version: u8, frame_id: u64) -> Vec<u8> {
    assert!(ACCEPTED_VERSIONS.contains(&version), "unknown protocol version {version}");
    let mut out = vec![version];
    if version >= PROTO_VERSION {
        put_u64(&mut out, frame_id);
    }
    match req {
        Request::Predict { model, deadline_ms, class, slo_us, vectors } => {
            out.push(REQ_PREDICT);
            put_str(&mut out, model);
            put_u32(&mut out, *deadline_ms);
            if version >= PROTO_V2 {
                out.push(*class as u8);
                put_u32(&mut out, *slo_us);
            }
            put_u32(&mut out, vectors.len() as u32);
            for v in vectors {
                put_sparse(&mut out, v);
            }
        }
        Request::Schedule { strategy, rows, cols, entries } => {
            out.push(REQ_SCHEDULE);
            put_str(&mut out, strategy);
            put_u64(&mut out, *rows);
            put_u64(&mut out, *cols);
            put_u32(&mut out, entries.len() as u32);
            for &(r, c, v) in entries {
                put_u64(&mut out, r);
                put_u64(&mut out, c);
                put_f64(&mut out, v);
            }
        }
        Request::Stats => out.push(REQ_STATS),
        Request::Health => out.push(REQ_HEALTH),
        Request::Shutdown => out.push(REQ_SHUTDOWN),
    }
    out
}

/// Decodes a request frame payload (any live version).
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    decode_request_versioned(payload).map(|(_, req)| req)
}

/// Decodes a request frame payload and reports which protocol version it
/// arrived in, so the server can answer in kind.
pub fn decode_request_versioned(payload: &[u8]) -> Result<(u8, Request), ProtoError> {
    decode_request_framed(payload).map(|(version, _, req)| (version, req))
}

/// Decodes a request frame payload, reporting the protocol version it
/// arrived in and its frame id (`0` for pre-v3 frames, which are served
/// one-in-flight).
pub fn decode_request_framed(payload: &[u8]) -> Result<(u8, u64, Request), ProtoError> {
    let mut r = Reader { bytes: payload, pos: 0 };
    let version = r.u8()?;
    if !ACCEPTED_VERSIONS.contains(&version) {
        return Err(ProtoError::BadVersion(version));
    }
    let frame_id = if version >= PROTO_VERSION { r.u64()? } else { 0 };
    let tag = r.u8()?;
    let req = match tag {
        REQ_PREDICT => {
            let model = r.string()?;
            let deadline_ms = r.u32()?;
            // v1 has no class/SLO on the wire: legacy traffic is
            // interactive with only its coarse deadline.
            let (class, slo_us) = if version >= PROTO_V2 {
                (RequestClass::from_wire(r.u8()?)?, r.u32()?)
            } else {
                (RequestClass::Interactive, 0)
            };
            // One sparse vector is at least dim + count = 12 bytes.
            let n = r.count(12)?;
            let mut vectors = Vec::with_capacity(n);
            for _ in 0..n {
                vectors.push(r.sparse()?);
            }
            Request::Predict { model, deadline_ms, class, slo_us, vectors }
        }
        REQ_SCHEDULE => {
            let strategy = r.string()?;
            let rows = r.u64()?;
            let cols = r.u64()?;
            let n = r.count(24)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push((r.u64()?, r.u64()?, r.f64()?));
            }
            Request::Schedule { strategy, rows, cols, entries }
        }
        REQ_STATS => Request::Stats,
        REQ_HEALTH => Request::Health,
        REQ_SHUTDOWN => Request::Shutdown,
        t => return Err(ProtoError::BadTag(t)),
    };
    r.finish()?;
    Ok((version, frame_id, req))
}

/// Encodes a response into a current-version frame payload with
/// `frame_id = 0`.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    encode_response_version(resp, PROTO_VERSION)
}

/// Encodes a response at an explicit protocol version with `frame_id = 0`.
/// See [`encode_response_framed`].
pub fn encode_response_version(resp: &Response, version: u8) -> Vec<u8> {
    encode_response_framed(resp, version, 0)
}

/// Encodes a response stamped with an explicit protocol version and frame
/// id — the server answers each request with the version it arrived in
/// (so a v1 client never sees a version byte it would reject) and echoes
/// the request's frame id (dropped below v3, where responses arrive in
/// order). Response bodies are identical across live versions; only the
/// header differs. Panics on an unknown version.
pub fn encode_response_framed(resp: &Response, version: u8, frame_id: u64) -> Vec<u8> {
    assert!(ACCEPTED_VERSIONS.contains(&version), "unknown protocol version {version}");
    let mut out = vec![version];
    if version >= PROTO_VERSION {
        put_u64(&mut out, frame_id);
    }
    match resp {
        Response::Predictions(values) => {
            out.push(RESP_PREDICTIONS);
            put_u32(&mut out, values.len() as u32);
            for &v in values {
                put_f64(&mut out, v);
            }
        }
        Response::Scheduled { format, reason, scores } => {
            out.push(RESP_SCHEDULED);
            put_str(&mut out, format);
            put_str(&mut out, reason);
            put_u32(&mut out, scores.len() as u32);
            for (name, score) in scores {
                put_str(&mut out, name);
                put_f64(&mut out, *score);
            }
        }
        Response::Stats(json) => {
            out.push(RESP_STATS);
            put_str(&mut out, json);
        }
        Response::Busy => out.push(RESP_BUSY),
        Response::TimedOut => out.push(RESP_TIMED_OUT),
        Response::ShuttingDown => out.push(RESP_SHUTTING_DOWN),
        Response::Error(msg) => {
            out.push(RESP_ERROR);
            put_str(&mut out, msg);
        }
        Response::Health(json) => {
            out.push(RESP_HEALTH);
            put_str(&mut out, json);
        }
    }
    out
}

/// Decodes a response frame payload (any live version).
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    decode_response_framed(payload).map(|(_, _, resp)| resp)
}

/// Decodes a response frame payload, reporting the protocol version it
/// arrived in and the echoed frame id (`0` for pre-v3 frames). The frame
/// id is how a pipelining client matches out-of-order responses back to
/// their requests.
pub fn decode_response_framed(payload: &[u8]) -> Result<(u8, u64, Response), ProtoError> {
    let mut r = Reader { bytes: payload, pos: 0 };
    let version = r.u8()?;
    if !ACCEPTED_VERSIONS.contains(&version) {
        return Err(ProtoError::BadVersion(version));
    }
    let frame_id = if version >= PROTO_VERSION { r.u64()? } else { 0 };
    let tag = r.u8()?;
    let resp = match tag {
        RESP_PREDICTIONS => {
            let n = r.count(8)?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.f64()?);
            }
            Response::Predictions(values)
        }
        RESP_SCHEDULED => {
            let format = r.string()?;
            let reason = r.string()?;
            // Each score is at least a 4-byte name length + 8-byte score.
            let n = r.count(12)?;
            let mut scores = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.string()?;
                scores.push((name, r.f64()?));
            }
            Response::Scheduled { format, reason, scores }
        }
        RESP_STATS => Response::Stats(r.string()?),
        RESP_BUSY => Response::Busy,
        RESP_TIMED_OUT => Response::TimedOut,
        RESP_SHUTTING_DOWN => Response::ShuttingDown,
        RESP_ERROR => Response::Error(r.string()?),
        RESP_HEALTH => Response::Health(r.string()?),
        t => return Err(ProtoError::BadTag(t)),
    };
    r.finish()?;
    Ok((version, frame_id, resp))
}

// ---- framing ------------------------------------------------------------

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. `Ok(None)` on clean EOF at a frame boundary.
/// Length prefixes above [`MAX_FRAME_LEN`] are rejected *before* the
/// payload buffer is allocated — the error is `InvalidData` carrying a
/// [`ProtoError::FrameTooLarge`] (recover it with [`proto_error_of`]).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            ProtoError::FrameTooLarge(len),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Recovers the typed [`ProtoError`] wrapped inside an `io::Error` by
/// [`read_frame`] or the client, if there is one.
pub fn proto_error_of(err: &std::io::Error) -> Option<&ProtoError> {
    err.get_ref().and_then(|inner| inner.downcast_ref::<ProtoError>())
}

/// Converts a submitted `Schedule` body into a triplet matrix, validating
/// coordinates against the declared shape.
pub fn entries_to_triplets(
    rows: u64,
    cols: u64,
    entries: &[(u64, u64, f64)],
) -> Result<TripletMatrix, ProtoError> {
    let (nr, nc) = (rows as usize, cols as usize);
    let mut t = TripletMatrix::with_capacity(nr, nc, entries.len());
    for &(r, c, v) in entries {
        if r >= rows || c >= cols {
            return Err(ProtoError::Malformed("triplet coordinate out of bounds"));
        }
        t.push(r as usize, c as usize, v);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(dim: usize, pairs: &[(usize, f64)]) -> SparseVec {
        SparseVec::new(
            dim,
            pairs.iter().map(|&(i, _)| i).collect(),
            pairs.iter().map(|&(_, v)| v).collect(),
        )
    }

    /// Hand-builds a current-version payload header: version, frame id 0,
    /// tag.
    fn v3_header(tag: u8) -> Vec<u8> {
        let mut out = vec![PROTO_VERSION];
        put_u64(&mut out, 0);
        out.push(tag);
        out
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Predict {
                model: "adult".into(),
                deadline_ms: 250,
                class: RequestClass::Batch,
                slo_us: 750_000,
                vectors: vec![sv(5, &[(0, 1.0), (3, -2.5)]), sv(5, &[])],
            },
            Request::Schedule {
                strategy: "cost".into(),
                rows: 3,
                cols: 4,
                entries: vec![(0, 0, 1.0), (2, 3, -7.25)],
            },
            Request::Stats,
            Request::Health,
            Request::Shutdown,
        ];
        for req in reqs {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Predictions(vec![1.5, -0.25, f64::MIN_POSITIVE]),
            Response::Scheduled {
                format: "CSR".into(),
                reason: "high row imbalance".into(),
                scores: vec![("CSR".into(), 0.5), ("ELL".into(), 0.9)],
            },
            Response::Stats("{\"ok\":true}".into()),
            Response::Busy,
            Response::TimedOut,
            Response::ShuttingDown,
            Response::Error("no such model".into()),
            Response::Health("{\"status\":\"ok\"}".into()),
        ];
        for resp in resps {
            assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let full = encode_request(&Request::Predict {
            model: "m".into(),
            deadline_ms: 0,
            class: RequestClass::Interactive,
            slo_us: 0,
            vectors: vec![sv(8, &[(1, 2.0), (7, 3.0)])],
        });
        for cut in 0..full.len() {
            assert!(decode_request(&full[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn lying_counts_are_rejected_before_allocation() {
        // A Predict frame claiming u32::MAX vectors with no bytes behind it.
        let mut payload = v3_header(REQ_PREDICT);
        put_str(&mut payload, "m");
        put_u32(&mut payload, 0); // deadline
        payload.push(0); // class
        put_u32(&mut payload, 0); // slo
        put_u32(&mut payload, u32::MAX); // vector count
        assert_eq!(decode_request(&payload), Err(ProtoError::Truncated));
    }

    #[test]
    fn invalid_sparse_vectors_are_protocol_errors() {
        // Indices out of order.
        let mut payload = v3_header(REQ_PREDICT);
        put_str(&mut payload, "m");
        put_u32(&mut payload, 0);
        payload.push(1); // class: batch
        put_u32(&mut payload, 0); // slo
        put_u32(&mut payload, 1);
        put_u64(&mut payload, 4); // dim
        put_u32(&mut payload, 2); // nnz
        put_u64(&mut payload, 3);
        put_u64(&mut payload, 1); // descending
        put_f64(&mut payload, 1.0);
        put_f64(&mut payload, 2.0);
        assert!(matches!(decode_request(&payload), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn bad_version_tag_and_class_are_rejected() {
        assert_eq!(decode_request(&[9, REQ_STATS]), Err(ProtoError::BadVersion(9)));
        assert_eq!(decode_request(&v3_header(99)), Err(ProtoError::BadTag(99)));
        assert_eq!(decode_request(&[PROTO_V2, 99]), Err(ProtoError::BadTag(99)));
        assert_eq!(decode_response(&v3_header(3)), Err(ProtoError::BadTag(3)));
        let mut payload = v3_header(REQ_PREDICT);
        put_str(&mut payload, "m");
        put_u32(&mut payload, 0);
        payload.push(7); // no such class
        put_u32(&mut payload, 0);
        put_u32(&mut payload, 0);
        assert!(matches!(decode_request(&payload), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn v1_predict_decodes_as_interactive_with_the_legacy_deadline() {
        let req = Request::Predict {
            model: "adult".into(),
            deadline_ms: 40,
            class: RequestClass::Batch, // dropped by the v1 encoding
            slo_us: 999,                // dropped by the v1 encoding
            vectors: vec![sv(5, &[(2, 1.5)])],
        };
        let payload = encode_request_version(&req, PROTO_V1);
        assert_eq!(payload[0], PROTO_V1);
        let (version, decoded) = decode_request_versioned(&payload).unwrap();
        assert_eq!(version, PROTO_V1);
        assert_eq!(
            decoded,
            Request::Predict {
                model: "adult".into(),
                deadline_ms: 40,
                class: RequestClass::Interactive,
                slo_us: 0,
                vectors: vec![sv(5, &[(2, 1.5)])],
            }
        );
    }

    #[test]
    fn non_predict_requests_are_version_stable() {
        for req in [Request::Stats, Request::Health, Request::Shutdown] {
            let v1 = encode_request_version(&req, PROTO_V1);
            let v2 = encode_request_version(&req, PROTO_V2);
            let v3 = encode_request_version(&req, PROTO_VERSION);
            assert_eq!(&v1[1..], &v2[1..], "{req:?} bodies must match across versions");
            // v3 inserts an 8-byte frame id between version and tag; the
            // body after it is unchanged.
            assert_eq!(&v2[1..], &v3[9..], "{req:?} v3 body must match pre-v3");
            assert_eq!(decode_request(&v1).unwrap(), req);
            assert_eq!(decode_request(&v2).unwrap(), req);
            assert_eq!(decode_request(&v3).unwrap(), req);
        }
    }

    #[test]
    fn responses_echo_the_requested_version() {
        let resp = Response::Predictions(vec![1.0, 2.0]);
        let v1 = encode_response_version(&resp, PROTO_V1);
        assert_eq!(v1[0], PROTO_V1);
        assert_eq!(decode_response(&v1).unwrap(), resp);
        let v2 = encode_response_version(&resp, PROTO_V2);
        assert_eq!(v2[0], PROTO_V2);
        assert_eq!(&v1[1..], &v2[1..], "response bodies are version-independent");
        let v3 = encode_response_version(&resp, PROTO_VERSION);
        assert_eq!(v3[0], PROTO_VERSION);
        assert_eq!(&v2[1..], &v3[9..], "v3 body must match pre-v3 after the frame id");
    }

    #[test]
    fn v3_frames_carry_and_echo_the_frame_id() {
        let req = Request::Predict {
            model: "m".into(),
            deadline_ms: 10,
            class: RequestClass::Batch,
            slo_us: 500,
            vectors: vec![sv(4, &[(1, 2.0)])],
        };
        let payload = encode_request_framed(&req, PROTO_VERSION, u64::MAX - 7);
        let (version, frame_id, decoded) = decode_request_framed(&payload).unwrap();
        assert_eq!((version, frame_id), (PROTO_VERSION, u64::MAX - 7));
        assert_eq!(decoded, req);

        let resp = Response::Predictions(vec![0.5]);
        let payload = encode_response_framed(&resp, PROTO_VERSION, 42);
        let (version, frame_id, decoded) = decode_response_framed(&payload).unwrap();
        assert_eq!((version, frame_id), (PROTO_VERSION, 42));
        assert_eq!(decoded, resp);
    }

    #[test]
    fn pre_v3_frames_decode_with_frame_id_zero() {
        for version in [PROTO_V1, PROTO_V2] {
            // The frame id is dropped by pre-v3 encodings…
            let payload = encode_request_framed(&Request::Stats, version, 999);
            let (v, frame_id, req) = decode_request_framed(&payload).unwrap();
            assert_eq!((v, frame_id, req), (version, 0, Request::Stats));
            // …and on responses too.
            let payload = encode_response_framed(&Response::Busy, version, 999);
            let (v, frame_id, resp) = decode_response_framed(&payload).unwrap();
            assert_eq!((v, frame_id, resp), (version, 0, Response::Busy));
        }
    }

    #[test]
    fn request_class_parses_and_indexes() {
        assert_eq!("interactive".parse::<RequestClass>().unwrap(), RequestClass::Interactive);
        assert_eq!("batch".parse::<RequestClass>().unwrap(), RequestClass::Batch);
        assert!("bulk".parse::<RequestClass>().is_err());
        for (i, c) in RequestClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(RequestClass::from_wire(*c as u8).unwrap(), *c);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_request(&Request::Stats);
        payload.push(0);
        assert!(matches!(decode_request(&payload), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn frames_round_trip_and_bound_length() {
        let payload = encode_request(&Request::Stats);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&payload[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None); // clean EOF

        let huge = (MAX_FRAME_LEN as u32 + 1).to_le_bytes();
        let err = read_frame(&mut &huge[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // The typed error survives the io::Error wrapping for the retry
        // layer's classification.
        assert_eq!(
            proto_error_of(&err),
            Some(&ProtoError::FrameTooLarge(MAX_FRAME_LEN + 1)),
            "{err}"
        );
    }

    #[test]
    fn entries_to_triplets_validates_bounds() {
        let t = entries_to_triplets(2, 3, &[(0, 0, 1.0), (1, 2, 2.0)]).unwrap();
        assert_eq!((t.rows(), t.cols(), t.nnz()), (2, 3, 2));
        assert!(entries_to_triplets(2, 3, &[(2, 0, 1.0)]).is_err());
        assert!(entries_to_triplets(2, 3, &[(0, 3, 1.0)]).is_err());
    }
}
