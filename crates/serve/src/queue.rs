//! Bounded MPMC job queues with explicit backpressure.
//!
//! The executor's contract with the acceptor side is *reject, don't
//! buffer*: [`BoundedQueue::try_push`] never blocks — a full queue returns
//! the job to the caller, which answers the client with `Busy`. Workers
//! drain with [`BoundedQueue::pop_batch`], which can linger briefly
//! (the *gather window*) to let concurrent requests pile up into one
//! multi-vector block — the cross-client analogue of the SMO loop's
//! blocked kernel-row prefetch.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the job is handed back.
    Full(T),
    /// The queue is closed (server draining); the job is handed back.
    Closed(T),
}

struct State<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity queue connecting connection handlers to workers.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    readable: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` pending jobs (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State { jobs: VecDeque::new(), closed: false }),
            readable: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").jobs.len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking enqueue. A full or closed queue refuses immediately —
    /// this is the backpressure point.
    pub fn try_push(&self, job: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().expect("queue poisoned");
        if s.closed {
            return Err(PushError::Closed(job));
        }
        if s.jobs.len() >= self.capacity {
            return Err(PushError::Full(job));
        }
        s.jobs.push_back(job);
        drop(s);
        self.readable.notify_one();
        Ok(())
    }

    /// Blocks until jobs are available (or the queue closes empty), then
    /// drains up to `max` of them, where each job weighs `weight(job)` and
    /// the drained batch stays within `max` total weight (the first job is
    /// always taken, so oversized jobs still make progress).
    ///
    /// When fewer than `max` units are ready and `gather` is non-zero, the
    /// worker waits up to `gather` for more arrivals before draining —
    /// trading a bounded latency add for larger coalesced blocks.
    ///
    /// Returns `None` only when the queue is closed and empty.
    pub fn pop_batch(
        &self,
        max: usize,
        gather: Duration,
        weight: impl Fn(&T) -> usize,
    ) -> Option<Vec<T>> {
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if !s.jobs.is_empty() {
                break;
            }
            if s.closed {
                return None;
            }
            s = self.readable.wait(s).expect("queue poisoned");
        }
        if !gather.is_zero() {
            let deadline = Instant::now() + gather;
            while batch_weight(&s.jobs, max, &weight) < max && !s.closed {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, timeout) =
                    self.readable.wait_timeout(s, deadline - now).expect("queue poisoned");
                s = next;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        let mut batch = Vec::new();
        let mut used = 0;
        while let Some(job) = s.jobs.front() {
            let w = weight(job).max(1);
            if !batch.is_empty() && used + w > max {
                break;
            }
            used += w;
            batch.push(s.jobs.pop_front().expect("front checked"));
            if used >= max {
                break;
            }
        }
        Some(batch)
    }

    /// Non-blocking variant of [`BoundedQueue::pop_batch`] for workers
    /// multiplexing several queues: an empty queue returns an empty batch
    /// immediately instead of parking. The gather window still applies
    /// once at least one job is held, so coalescing behaviour matches the
    /// blocking path.
    pub fn try_pop_batch(
        &self,
        max: usize,
        gather: Duration,
        weight: impl Fn(&T) -> usize,
    ) -> Vec<T> {
        {
            let s = self.state.lock().expect("queue poisoned");
            if s.jobs.is_empty() {
                return Vec::new();
            }
        }
        self.pop_batch(max, gather, weight).unwrap_or_default()
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// waiting workers wake, and already-queued jobs remain drainable so a
    /// shutdown is a drain, not a drop.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.readable.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue poisoned").closed
    }
}

fn batch_weight<T>(jobs: &VecDeque<T>, max: usize, weight: &impl Fn(&T) -> usize) -> usize {
    let mut used = 0;
    for job in jobs {
        used += weight(job).max(1);
        if used >= max {
            return max;
        }
    }
    used
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn backpressure_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_batch_drains_up_to_weight_budget() {
        let q = BoundedQueue::new(16);
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        // Each job weighs 2; a budget of 5 takes jobs 0 and 1 (weight 4),
        // refuses job 2 (would exceed), leaving 4 queued.
        let batch = q.pop_batch(5, Duration::ZERO, |_| 2).unwrap();
        assert_eq!(batch, vec![0, 1]);
        assert_eq!(q.len(), 4);
        // An oversized first job is still taken alone.
        let batch = q.pop_batch(1, Duration::ZERO, |_| 10).unwrap();
        assert_eq!(batch, vec![2]);
    }

    #[test]
    fn gather_window_coalesces_late_arrivals() {
        let q = Arc::new(BoundedQueue::new(16));
        q.try_push(0).unwrap();
        let pusher = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                q.try_push(1).unwrap();
                q.try_push(2).unwrap();
            })
        };
        // A generous gather window picks up the pusher's two late jobs.
        let batch = q.pop_batch(3, Duration::from_millis(500), |_| 1).unwrap();
        pusher.join().unwrap();
        assert_eq!(batch, vec![0, 1, 2]);
    }

    #[test]
    fn close_drains_then_signals_completion() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed(8)));
        // Queued work survives the close …
        assert_eq!(q.pop_batch(8, Duration::ZERO, |_| 1), Some(vec![7]));
        // … and only then does the queue report exhaustion.
        assert_eq!(q.pop_batch(8, Duration::ZERO, |_| 1), None);
    }

    #[test]
    fn pop_blocks_until_work_or_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(8, Duration::ZERO, |_| 1))
        };
        std::thread::sleep(Duration::from_millis(5));
        q.try_push(42).unwrap();
        assert_eq!(popper.join().unwrap(), Some(vec![42]));

        let q2 = Arc::new(BoundedQueue::<u32>::new(4));
        let popper = {
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || q2.pop_batch(8, Duration::ZERO, |_| 1))
        };
        std::thread::sleep(Duration::from_millis(5));
        q2.close();
        assert_eq!(popper.join().unwrap(), None);
    }
}
