//! Classed, bounded job storage with explicit backpressure.
//!
//! [`ClassedQueue`] is *pure storage*: it admits, counts, and drains jobs
//! but holds **no scheduling policy**. When to drain, in what order, and
//! how much batch work may ride along all live in the
//! [`crate::discipline::QueueDiscipline`] implementations — the queue just
//! executes a [`DrainPlan`] it is handed. (Before protocol v2 this module
//! owned the gather-window policy; moving it out is what lets disciplines
//! be swapped without touching storage.)
//!
//! Two invariants are the queue's own:
//!
//! * **Reject, don't buffer** — [`ClassedQueue::try_push`] never blocks; a
//!   full queue hands the job back so the caller can answer `Busy`.
//! * **Per-class reservation** — batch jobs may only fill the queue up to
//!   `capacity - reserved` slots, so a batch-scoring flood can never
//!   starve interactive admission (the latent unfairness of the old
//!   single-lane `BoundedQueue`). Interactive jobs may use every slot.

use crate::proto::RequestClass;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue (or the class's share of it) is at capacity.
    Full(T),
    /// The queue is closed (server draining); the job is handed back.
    Closed(T),
}

/// Scheduling-relevant facts about one queued job, visible to disciplines
/// through [`ClassedQueue::pending`] without touching the job itself.
#[derive(Debug, Clone, Copy)]
pub struct JobMeta {
    /// Traffic class the job arrived with.
    pub class: RequestClass,
    /// Drain-budget weight (number of vectors; min 1).
    pub weight: usize,
    /// When the job entered the queue.
    pub enqueued: Instant,
    /// When the job's answer stops being useful.
    pub deadline: Instant,
    /// Global arrival number (lower = earlier), total across both lanes.
    pub seq: u64,
}

/// The order a [`DrainPlan`] visits candidates in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainOrder {
    /// Strict arrival order across both classes (FIFO).
    Arrival,
    /// Every queued interactive job (by arrival) before any batch job.
    InteractiveFirst,
}

/// A discipline's instruction for one drain sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainPlan {
    /// Candidate visiting order.
    pub order: DrainOrder,
    /// Total weight budget for the sweep (the first job is always taken,
    /// so an oversized job still makes progress).
    pub max_weight: usize,
    /// Weight budget batch-class jobs may consume within `max_weight`. A
    /// value `>= max_weight` puts no extra limit on batch; `0` excludes
    /// batch jobs from the sweep (unless a batch job is first in order and
    /// nothing else is taken).
    pub max_batch_weight: usize,
}

impl DrainPlan {
    /// An unbounded arrival-order plan — what shutdown drains use.
    pub fn drain_all() -> Self {
        Self { order: DrainOrder::Arrival, max_weight: usize::MAX, max_batch_weight: usize::MAX }
    }
}

struct Inner<T> {
    /// One FIFO lane per class, indexed by [`RequestClass::index`].
    lanes: [VecDeque<(JobMeta, T)>; 2],
    closed: bool,
    next_seq: u64,
}

/// A fixed-capacity two-lane queue connecting connection handlers to
/// workers. All operations are non-blocking; arrival notification is the
/// executor's concern (its wake signal), not the queue's.
pub struct ClassedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    batch_capacity: usize,
}

impl<T> ClassedQueue<T> {
    /// A queue admitting at most `capacity` jobs total (min 1), of which
    /// `ceil(capacity * interactive_reserve)` slots are reserved for
    /// interactive jobs (batch admission stops at `capacity - reserved`).
    /// The reserve is clamped so batch always keeps at least one slot.
    pub fn new(capacity: usize, interactive_reserve: f64) -> Self {
        let capacity = capacity.max(1);
        let reserved = ((capacity as f64) * interactive_reserve.clamp(0.0, 1.0)).ceil() as usize;
        let batch_capacity = capacity.saturating_sub(reserved).max(1).min(capacity);
        Self {
            inner: Mutex::new(Inner {
                lanes: [VecDeque::new(), VecDeque::new()],
                closed: false,
                next_seq: 0,
            }),
            capacity,
            batch_capacity,
        }
    }

    /// The total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The slots batch-class jobs may occupy.
    pub fn batch_capacity(&self) -> usize {
        self.batch_capacity
    }

    /// Jobs currently waiting (both classes).
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("queue poisoned");
        inner.lanes.iter().map(VecDeque::len).sum()
    }

    /// Jobs of one class currently waiting.
    pub fn len_class(&self, class: RequestClass) -> usize {
        self.inner.lock().expect("queue poisoned").lanes[class.index()].len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking enqueue. A closed queue, a full queue, or a batch push
    /// beyond the batch share refuses immediately — the backpressure point.
    pub fn try_push(
        &self,
        job: T,
        class: RequestClass,
        weight: usize,
        enqueued: Instant,
        deadline: Instant,
    ) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(job));
        }
        let total: usize = inner.lanes.iter().map(VecDeque::len).sum();
        if total >= self.capacity {
            return Err(PushError::Full(job));
        }
        if class == RequestClass::Batch && inner.lanes[class.index()].len() >= self.batch_capacity {
            return Err(PushError::Full(job));
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let meta = JobMeta { class, weight: weight.max(1), enqueued, deadline, seq };
        inner.lanes[class.index()].push_back((meta, job));
        Ok(())
    }

    /// A snapshot of every queued job's metadata, in arrival order — what
    /// a discipline's `decide` sees.
    pub fn pending(&self) -> Vec<JobMeta> {
        let inner = self.inner.lock().expect("queue poisoned");
        let mut out: Vec<JobMeta> = inner.lanes.iter().flatten().map(|(meta, _)| *meta).collect();
        out.sort_by_key(|m| m.seq);
        out
    }

    /// Executes one drain sweep per `plan`: visits candidates in the
    /// plan's order, takes jobs while they fit the total budget (batch
    /// jobs must also fit the batch budget), and stops at the first job
    /// that does not fit — no reordering *within* the chosen order. The
    /// very first candidate is always taken so oversized jobs progress.
    /// Returns an empty vec when nothing is queued.
    pub fn drain(&self, plan: &DrainPlan) -> Vec<(JobMeta, T)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        // Count how many to take from each lane front. Both orders take a
        // prefix of each lane, so selection reduces to two counts.
        let mut take = [0usize; 2];
        let mut used = 0usize;
        let mut batch_used = 0usize;
        let mut taken_any = false;
        loop {
            // Peek the next candidate per the plan's order.
            let next_of = |lane: usize| inner.lanes[lane].get(take[lane]).map(|(m, _)| *m);
            let (ia, ba) = (next_of(0), next_of(1));
            let candidate = match plan.order {
                DrainOrder::InteractiveFirst => ia.or(ba),
                DrainOrder::Arrival => match (ia, ba) {
                    (Some(a), Some(b)) => Some(if a.seq < b.seq { a } else { b }),
                    (a, b) => a.or(b),
                },
            };
            let Some(meta) = candidate else { break };
            let w = meta.weight;
            if taken_any {
                if used.saturating_add(w) > plan.max_weight {
                    break;
                }
                if meta.class == RequestClass::Batch
                    && batch_used.saturating_add(w) > plan.max_batch_weight
                {
                    break;
                }
            }
            used = used.saturating_add(w);
            if meta.class == RequestClass::Batch {
                batch_used = batch_used.saturating_add(w);
            }
            take[meta.class.index()] += 1;
            taken_any = true;
            if used >= plan.max_weight {
                break;
            }
        }
        let mut out: Vec<(JobMeta, T)> = Vec::with_capacity(take[0] + take[1]);
        for (lane, &count) in take.iter().enumerate() {
            for _ in 0..count {
                out.push(inner.lanes[lane].pop_front().expect("counted above"));
            }
        }
        out.sort_by_key(|(m, _)| match plan.order {
            DrainOrder::Arrival => (0, m.seq),
            DrainOrder::InteractiveFirst => (m.class.index(), m.seq),
        });
        out
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// while already-queued jobs remain drainable, so a shutdown is a
    /// drain, not a drop.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
    }

    /// Whether [`ClassedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn push(q: &ClassedQueue<u32>, job: u32, class: RequestClass, weight: usize) {
        let now = Instant::now();
        q.try_push(job, class, weight, now, now + Duration::from_secs(5)).unwrap();
    }

    fn drained(q: &ClassedQueue<u32>, plan: &DrainPlan) -> Vec<u32> {
        q.drain(plan).into_iter().map(|(_, j)| j).collect()
    }

    #[test]
    fn backpressure_rejects_without_blocking() {
        let q = ClassedQueue::new(2, 0.0);
        push(&q, 1, RequestClass::Interactive, 1);
        push(&q, 2, RequestClass::Interactive, 1);
        let now = Instant::now();
        assert_eq!(q.try_push(3, RequestClass::Interactive, 1, now, now), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn batch_backlog_cannot_starve_interactive_admission() {
        // Capacity 4 with a 25% interactive reserve: batch stops at 3.
        let q = ClassedQueue::new(4, 0.25);
        assert_eq!(q.batch_capacity(), 3);
        for j in 0..3 {
            push(&q, j, RequestClass::Batch, 1);
        }
        let now = Instant::now();
        assert_eq!(q.try_push(9, RequestClass::Batch, 1, now, now), Err(PushError::Full(9)));
        // The reserved slot still admits interactive work …
        push(&q, 10, RequestClass::Interactive, 1);
        // … until the *total* capacity is reached.
        assert_eq!(
            q.try_push(11, RequestClass::Interactive, 1, now, now),
            Err(PushError::Full(11))
        );
        assert_eq!(
            (q.len_class(RequestClass::Interactive), q.len_class(RequestClass::Batch)),
            (1, 3)
        );
    }

    #[test]
    fn arrival_order_interleaves_classes_by_seq() {
        let q = ClassedQueue::new(8, 0.25);
        push(&q, 0, RequestClass::Batch, 1);
        push(&q, 1, RequestClass::Interactive, 1);
        push(&q, 2, RequestClass::Batch, 1);
        let plan = DrainPlan { order: DrainOrder::Arrival, max_weight: 8, max_batch_weight: 8 };
        assert_eq!(drained(&q, &plan), vec![0, 1, 2]);
    }

    #[test]
    fn interactive_first_reorders_across_classes() {
        let q = ClassedQueue::new(8, 0.25);
        push(&q, 0, RequestClass::Batch, 1);
        push(&q, 1, RequestClass::Batch, 1);
        push(&q, 2, RequestClass::Interactive, 1);
        let plan =
            DrainPlan { order: DrainOrder::InteractiveFirst, max_weight: 8, max_batch_weight: 8 };
        assert_eq!(drained(&q, &plan), vec![2, 0, 1]);
    }

    #[test]
    fn drain_respects_total_and_batch_budgets() {
        let q = ClassedQueue::new(16, 0.0);
        for j in 0..6 {
            push(&q, j, RequestClass::Batch, 2);
        }
        // Budget 5 with each job weighing 2: jobs 0 and 1 fit, job 2 would
        // exceed, 4 stay queued.
        let plan = DrainPlan { order: DrainOrder::Arrival, max_weight: 5, max_batch_weight: 5 };
        assert_eq!(drained(&q, &plan), vec![0, 1]);
        assert_eq!(q.len(), 4);
        // An oversized first job is still taken alone.
        let plan = DrainPlan { order: DrainOrder::Arrival, max_weight: 1, max_batch_weight: 0 };
        assert_eq!(drained(&q, &plan), vec![2]);
        // A batch budget below a job's weight stops the sweep after any
        // interactive prefix.
        let q2 = ClassedQueue::new(16, 0.0);
        push(&q2, 0, RequestClass::Interactive, 1);
        push(&q2, 1, RequestClass::Batch, 3);
        push(&q2, 2, RequestClass::Batch, 3);
        let plan =
            DrainPlan { order: DrainOrder::InteractiveFirst, max_weight: 16, max_batch_weight: 3 };
        assert_eq!(drained(&q2, &plan), vec![0, 1]);
        assert_eq!(q2.len(), 1);
    }

    #[test]
    fn pending_reports_arrival_order_metadata() {
        let q = ClassedQueue::new(8, 0.25);
        push(&q, 0, RequestClass::Batch, 4);
        push(&q, 1, RequestClass::Interactive, 1);
        let pending = q.pending();
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0].class, RequestClass::Batch);
        assert_eq!(pending[0].weight, 4);
        assert_eq!(pending[1].class, RequestClass::Interactive);
        assert!(pending[0].seq < pending[1].seq);
    }

    #[test]
    fn close_drains_then_refuses() {
        let q = ClassedQueue::new(4, 0.25);
        push(&q, 7, RequestClass::Interactive, 1);
        q.close();
        let now = Instant::now();
        assert_eq!(
            q.try_push(8, RequestClass::Interactive, 1, now, now),
            Err(PushError::Closed(8))
        );
        // Queued work survives the close …
        assert_eq!(drained(&q, &DrainPlan::drain_all()), vec![7]);
        // … and only then is the queue exhausted.
        assert!(q.drain(&DrainPlan::drain_all()).is_empty());
        assert!(q.is_closed());
    }
}
