//! The serving half of the online-learning loop: production telemetry
//! recording, background retraining, and regret-guarded hot model swaps.
//!
//! [`FeedbackHub`] owns the three runtime pieces `dls_learn::online`
//! deliberately leaves to the service:
//!
//! 1. **Recording** — the executor calls [`FeedbackHub::record_sweep`]
//!    after every successful blocked sweep; the observation lands in a
//!    bounded [`ObservationRing`] (appenders never block; when full the
//!    oldest entry is overwritten and counted).
//! 2. **Retraining** — a low-priority background thread periodically
//!    drains the ring and runs [`retrain_online`]: synthetic grid plus
//!    recency-weighted production labels, with the bagged-forest upgrade
//!    when a single tree plateaus. [`FeedbackHub::force_retrain`] runs one
//!    cycle synchronously for tests and the CI smoke.
//! 3. **Swap with a regret guard** — the candidate and the incumbent are
//!    both replayed over the *trusted* grid holdout (analytic labels the
//!    telemetry log cannot influence, so a poisoned log cannot also poison
//!    its own acceptance test). A candidate whose mean regret exceeds the
//!    incumbent's is rolled back — counted, never published. An accepted
//!    candidate becomes a confidence-gated [`HybridSelector`] and is
//!    published through the shared [`SwappableSelector`]: in-flight
//!    selections finish against the generation they started with, and the
//!    next one picks up the new model. No request is ever paused or
//!    dropped for a swap.
//!
//! The hub's generation counter (the `SwappableSelector`'s) is the "active
//! model version" surfaced by `Stats` and the CLI.

use crate::stats::ServeStats;
use dls_core::{FormatSelector, RuleBasedSelector, SwappableSelector};
use dls_learn::{
    model_regret, retrain_online, HybridSelector, LabeledObservation, ObservationRing,
    OnlineTrainConfig, TrainedModel, DEFAULT_MIN_CONFIDENCE,
};
use dls_sparse::{Format, MatrixFeatures};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Feedback-loop tuning knobs.
#[derive(Debug, Clone)]
pub struct FeedbackConfig {
    /// Observations held in the telemetry ring before the oldest is
    /// overwritten.
    pub ring_capacity: usize,
    /// A retrain cycle is skipped (ring left intact) below this many
    /// buffered observations.
    pub min_observations: usize,
    /// Background retrain period.
    pub interval: Duration,
    /// Retraining knobs (grid size, weights, plateau/forest policy). The
    /// serve default uses the quick grid so a cycle stays cheap enough for
    /// a low-priority thread.
    pub train: OnlineTrainConfig,
    /// Confidence gate for the published [`HybridSelector`].
    pub min_confidence: f64,
    /// Spawn the periodic background retrainer. Off, the hub still records
    /// and [`FeedbackHub::force_retrain`] still works — what the tests and
    /// the CI smoke use for determinism.
    pub background: bool,
    /// Start from this model (e.g. the frozen offline-trained selector)
    /// instead of the analytic rules.
    pub initial_model: Option<TrainedModel>,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        Self {
            ring_capacity: 4096,
            min_observations: 16,
            interval: Duration::from_secs(30),
            train: OnlineTrainConfig { quick_grid: true, ..OnlineTrainConfig::default() },
            min_confidence: DEFAULT_MIN_CONFIDENCE,
            background: true,
            initial_model: None,
        }
    }
}

/// What one retrain cycle did.
#[derive(Debug, Clone, PartialEq)]
pub enum RetrainOutcome {
    /// Too few observations; the ring was left intact.
    Skipped {
        /// Observations buffered at the time.
        buffered: usize,
    },
    /// The candidate beat (or tied) the incumbent on the replay slice and
    /// was published.
    Accepted {
        /// New active model version (the swap generation).
        version: u64,
        /// Trees in the published model (1 = single CART).
        ensemble_size: usize,
        /// Candidate agreement on the trusted holdout.
        holdout_accuracy: f64,
        /// Candidate mean regret on the replay slice.
        candidate_regret: f64,
        /// Incumbent mean regret on the same slice (`None` for the first
        /// accepted model).
        incumbent_regret: Option<f64>,
    },
    /// The candidate's replay regret exceeded the incumbent's; it was
    /// discarded and the incumbent keeps serving.
    RolledBack {
        /// Candidate mean regret on the replay slice.
        candidate_regret: f64,
        /// Incumbent mean regret it failed to beat.
        incumbent_regret: f64,
    },
}

/// The incumbent model the guard defends.
struct Incumbent {
    model: TrainedModel,
    /// Holdout accuracy, when it came out of a retrain cycle (drives the
    /// plateau rule); `None` for a preloaded offline model.
    accuracy: Option<f64>,
}

/// `last_retrain` gauge values (also the wire encoding in the stats JSON).
const OUTCOME_NONE: u64 = 0;
const OUTCOME_ACCEPTED: u64 = 1;
const OUTCOME_ROLLED_BACK: u64 = 2;

/// Decodes the `last_retrain` gauge.
pub fn retrain_outcome_name(v: u64) -> &'static str {
    match v {
        OUTCOME_ACCEPTED => "accepted",
        OUTCOME_ROLLED_BACK => "rolled_back",
        _ => "none",
    }
}

/// Shared state of the online-learning feedback loop.
pub struct FeedbackHub {
    config: FeedbackConfig,
    ring: ObservationRing,
    swap: Arc<SwappableSelector>,
    /// The live hybrid, kept alongside the type-erased swap handle so
    /// telemetry can read its fallback counters; `None` until the first
    /// model is published.
    active: Mutex<Option<Arc<HybridSelector>>>,
    incumbent: Mutex<Option<Incumbent>>,
    retrains_accepted: AtomicU64,
    retrains_rolled_back: AtomicU64,
    last_outcome: AtomicU64,
    stop: Mutex<bool>,
    stop_cv: Condvar,
    retrainer: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for FeedbackHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeedbackHub")
            .field("version", &self.version())
            .field("buffered", &self.ring.len())
            .finish_non_exhaustive()
    }
}

impl FeedbackHub {
    /// Builds the hub. The initial selector behind the swap handle is the
    /// configured model (as a confidence-gated hybrid) or, absent one, the
    /// paper's host-tuned analytic rules.
    pub fn new(config: FeedbackConfig) -> Arc<Self> {
        let (initial, active, incumbent): (
            Arc<dyn FormatSelector>,
            Option<Arc<HybridSelector>>,
            Option<Incumbent>,
        ) = match config.initial_model.clone() {
            Some(model) => {
                let hybrid =
                    Arc::new(HybridSelector::with_confidence(model.clone(), config.min_confidence));
                (Arc::clone(&hybrid) as Arc<dyn FormatSelector>, Some(hybrid), {
                    Some(Incumbent { model, accuracy: None })
                })
            }
            None => (Arc::new(RuleBasedSelector::for_host()), None, None),
        };
        Arc::new(Self {
            ring: ObservationRing::new(config.ring_capacity),
            swap: Arc::new(SwappableSelector::new(initial)),
            active: Mutex::new(active),
            incumbent: Mutex::new(incumbent),
            retrains_accepted: AtomicU64::new(0),
            retrains_rolled_back: AtomicU64::new(0),
            last_outcome: AtomicU64::new(OUTCOME_NONE),
            stop: Mutex::new(false),
            stop_cv: Condvar::new(),
            retrainer: Mutex::new(None),
            config,
        })
    }

    /// The swappable selector handle. Build the serving `LayoutScheduler`
    /// on this (it implements `FormatSelector`) and every schedule request
    /// follows hot swaps with no coordination.
    pub fn selector(&self) -> Arc<SwappableSelector> {
        Arc::clone(&self.swap)
    }

    /// The configuration the hub was built with.
    pub fn config(&self) -> &FeedbackConfig {
        &self.config
    }

    /// Active model version: the swap generation (1 = the initial
    /// selector, bumped by every accepted retrain).
    pub fn version(&self) -> u64 {
        self.swap.generation()
    }

    /// Trees in the live model: 0 while the analytic rules serve, 1 for a
    /// single CART, 3..=7 for a bagged forest.
    pub fn ensemble_size(&self) -> usize {
        self.active
            .lock()
            .expect("feedback hub poisoned")
            .as_ref()
            .map_or(0, |h| h.model().ensemble_size())
    }

    /// (decisions, rule fallbacks) of the live hybrid; zeros while the
    /// analytic rules serve unconditionally.
    pub fn hybrid_counts(&self) -> (u64, u64) {
        self.active
            .lock()
            .expect("feedback hub poisoned")
            .as_ref()
            .map_or((0, 0), |h| (h.decisions(), h.fallbacks()))
    }

    /// The telemetry ring (tests and the JSONL flush path).
    pub fn ring(&self) -> &ObservationRing {
        &self.ring
    }

    /// Records one executed sweep into the training log.
    pub fn record_sweep(
        &self,
        features: &MatrixFeatures,
        format: Format,
        block: usize,
        batch: usize,
        nanos: u64,
    ) {
        self.ring.append(LabeledObservation {
            seq: 0, // assigned by the ring
            features: *features,
            format,
            block,
            batch,
            nanos: nanos.max(1),
        });
    }

    /// Appends pre-built observations (the `ReactiveScheduler` mining path
    /// and the poisoning tests).
    pub fn record_observations(&self, obs: impl IntoIterator<Item = LabeledObservation>) {
        for o in obs {
            self.ring.append(o);
        }
    }

    /// Runs one retrain cycle synchronously: drain, retrain, guard, swap
    /// or roll back. Safe to call concurrently with serving; the swap
    /// itself never blocks an in-flight selection.
    pub fn force_retrain(&self) -> RetrainOutcome {
        if self.ring.len() < self.config.min_observations {
            return RetrainOutcome::Skipped { buffered: self.ring.len() };
        }
        let observations = self.ring.drain();
        let incumbent_accuracy =
            self.incumbent.lock().expect("feedback hub poisoned").as_ref().and_then(|i| i.accuracy);
        let outcome = retrain_online(&self.config.train, &observations, incumbent_accuracy);

        // The regret guard replays both models over the trusted holdout —
        // synthetic grid cells with analytic labels, untouchable by the
        // telemetry that trained the candidate.
        let candidate_regret =
            model_regret(&outcome.model, "candidate", &outcome.holdout).mean_regret;
        let mut incumbent = self.incumbent.lock().expect("feedback hub poisoned");
        let incumbent_regret = incumbent
            .as_ref()
            .map(|i| model_regret(&i.model, "incumbent", &outcome.holdout).mean_regret);
        if let Some(inc) = incumbent_regret {
            if candidate_regret > inc {
                self.retrains_rolled_back.fetch_add(1, Ordering::Relaxed);
                self.last_outcome.store(OUTCOME_ROLLED_BACK, Ordering::Relaxed);
                return RetrainOutcome::RolledBack { candidate_regret, incumbent_regret: inc };
            }
        }

        let ensemble_size = outcome.model.ensemble_size();
        let hybrid = Arc::new(HybridSelector::with_confidence(
            outcome.model.clone(),
            self.config.min_confidence,
        ));
        let version = self.swap.swap(Arc::clone(&hybrid) as Arc<dyn FormatSelector>);
        *self.active.lock().expect("feedback hub poisoned") = Some(hybrid);
        *incumbent =
            Some(Incumbent { model: outcome.model, accuracy: Some(outcome.holdout_accuracy) });
        self.retrains_accepted.fetch_add(1, Ordering::Relaxed);
        self.last_outcome.store(OUTCOME_ACCEPTED, Ordering::Relaxed);
        RetrainOutcome::Accepted {
            version,
            ensemble_size,
            holdout_accuracy: outcome.holdout_accuracy,
            candidate_regret,
            incumbent_regret,
        }
    }

    /// Spawns the periodic background retrainer (idempotent; a no-op when
    /// `config.background` is off).
    pub fn spawn_retrainer(self: &Arc<Self>) {
        if !self.config.background {
            return;
        }
        let mut slot = self.retrainer.lock().expect("feedback hub poisoned");
        if slot.is_some() {
            return;
        }
        let hub = Arc::clone(self);
        *slot = Some(
            std::thread::Builder::new()
                .name("dls-serve-retrainer".to_string())
                .spawn(move || loop {
                    let mut stopped = hub.stop.lock().expect("feedback hub poisoned");
                    while !*stopped {
                        let (next, timed_out) = hub
                            .stop_cv
                            .wait_timeout(stopped, hub.config.interval)
                            .expect("feedback hub poisoned");
                        stopped = next;
                        if timed_out.timed_out() {
                            break;
                        }
                    }
                    if *stopped {
                        return;
                    }
                    drop(stopped);
                    let _ = hub.force_retrain();
                })
                .expect("spawn retrainer"),
        );
    }

    /// Stops and joins the background retrainer (idempotent).
    pub fn stop(&self) {
        *self.stop.lock().expect("feedback hub poisoned") = true;
        self.stop_cv.notify_all();
        if let Some(handle) = self.retrainer.lock().expect("feedback hub poisoned").take() {
            let _ = handle.join();
        }
    }

    /// Copies the hub's live gauges into a stats block (store semantics —
    /// safe to call on every `Stats` request).
    pub fn sync_stats(&self, stats: &ServeStats) {
        let s = &stats.selector;
        let (decisions, fallbacks) = self.hybrid_counts();
        s.active_version.store(self.version(), Ordering::Relaxed);
        s.ensemble_size.store(self.ensemble_size() as u64, Ordering::Relaxed);
        s.decisions.store(decisions, Ordering::Relaxed);
        s.fallbacks.store(fallbacks, Ordering::Relaxed);
        s.observations.store(self.ring.total_appended(), Ordering::Relaxed);
        s.observations_dropped.store(self.ring.dropped(), Ordering::Relaxed);
        s.retrains_accepted
            .store(self.retrains_accepted.load(Ordering::Relaxed), Ordering::Relaxed);
        s.retrains_rolled_back
            .store(self.retrains_rolled_back.load(Ordering::Relaxed), Ordering::Relaxed);
        s.last_retrain.store(self.last_outcome.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

impl Drop for FeedbackHub {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_learn::OnlineTrainConfig;
    use dls_sparse::TripletMatrix;

    fn quick_config() -> FeedbackConfig {
        FeedbackConfig {
            min_observations: 0,
            background: false,
            train: OnlineTrainConfig { quick_grid: true, ..OnlineTrainConfig::default() },
            ..FeedbackConfig::default()
        }
    }

    /// A matrix whose analytic winner is CSR (one wide row, the rest
    /// short), mirroring the learn-side test fixture.
    fn wide_row_features(m: usize) -> MatrixFeatures {
        let mut t = TripletMatrix::new(m, m);
        for j in 0..m {
            t.push(0, j, 1.0);
        }
        for i in 1..m {
            t.push(i, i % m, 1.0);
        }
        MatrixFeatures::from_triplets(&t)
    }

    #[test]
    fn first_retrain_is_accepted_and_bumps_the_version() {
        let hub = FeedbackHub::new(quick_config());
        assert_eq!(hub.version(), 1, "rules serve as generation 1");
        assert_eq!(hub.ensemble_size(), 0, "no learned model yet");
        match hub.force_retrain() {
            RetrainOutcome::Accepted { version, ensemble_size, .. } => {
                assert_eq!(version, 2);
                assert_eq!(ensemble_size, 1, "first model is a single tree");
            }
            other => panic!("expected acceptance, got {other:?}"),
        }
        assert_eq!(hub.version(), 2);
        assert_eq!(hub.ensemble_size(), 1);
        assert_eq!(retrain_outcome_name(OUTCOME_ACCEPTED), "accepted");
    }

    #[test]
    fn skip_below_the_observation_floor_leaves_the_ring_intact() {
        let hub = FeedbackHub::new(FeedbackConfig { min_observations: 5, ..quick_config() });
        hub.record_sweep(&wide_row_features(24), Format::Csr, 4, 2, 1_000);
        assert_eq!(hub.force_retrain(), RetrainOutcome::Skipped { buffered: 1 });
        assert_eq!(hub.ring().len(), 1, "skipped cycles must not consume the log");
    }

    /// The rollback guard: a log claiming DEN wins everywhere (absurd
    /// measured times on matrices whose true winner is sparse) produces a
    /// candidate whose regret on the trusted grid holdout exceeds the
    /// incumbent's — so the incumbent keeps serving and the version does
    /// not move.
    #[test]
    fn poisoned_retrain_is_rolled_back() {
        let hub = FeedbackHub::new(quick_config());
        assert!(matches!(hub.force_retrain(), RetrainOutcome::Accepted { .. }));
        let version = hub.version();

        // Poison: claim DEN "measured" instant and the real winner
        // catastrophically slow — at the *grid's own* feature vectors, so
        // the lie shadows the truth everywhere the holdout lives. Heavy
        // replication (production_weight × recency_boost) outvotes the
        // one-copy grid prior and the candidate learns "DEN everywhere".
        let cases = dls_learn::training_grid(&dls_learn::GridConfig {
            quick: true,
            ..dls_learn::GridConfig::default()
        });
        for case in &cases {
            let f = MatrixFeatures::from_triplets(&case.matrix);
            for _ in 0..2 {
                hub.record_sweep(&f, Format::Den, 4, 1, 10);
                hub.record_sweep(&f, Format::Csr, 4, 1, 10_000_000_000);
            }
        }
        match hub.force_retrain() {
            RetrainOutcome::RolledBack { candidate_regret, incumbent_regret } => {
                assert!(
                    candidate_regret > incumbent_regret,
                    "rollback must cite worse replay regret: {candidate_regret} vs {incumbent_regret}"
                );
            }
            other => panic!("poisoned candidate must roll back, got {other:?}"),
        }
        assert_eq!(hub.version(), version, "rolled-back candidate must not be published");
        let stats = ServeStats::new();
        hub.sync_stats(&stats);
        assert_eq!(stats.selector.retrains_rolled_back.load(Ordering::Relaxed), 1);
        assert_eq!(
            retrain_outcome_name(stats.selector.last_retrain.load(Ordering::Relaxed)),
            "rolled_back"
        );
    }

    /// The plateau rule end to end: a second cycle over the same data
    /// cannot beat the incumbent's accuracy, so the retrainer upgrades to
    /// the bagged forest and publishes it.
    #[test]
    fn plateau_upgrades_to_the_forest_on_the_second_cycle() {
        let hub = FeedbackHub::new(quick_config());
        assert!(matches!(hub.force_retrain(), RetrainOutcome::Accepted { .. }));
        match hub.force_retrain() {
            RetrainOutcome::Accepted { version, ensemble_size, .. } => {
                assert_eq!(version, 3);
                assert!(
                    (3..=7).contains(&ensemble_size),
                    "plateaued cycle should publish a forest, got {ensemble_size}"
                );
            }
            other => panic!("expected acceptance, got {other:?}"),
        }
        assert!((3..=7).contains(&hub.ensemble_size()));
    }

    #[test]
    fn background_retrainer_stops_cleanly() {
        let hub = FeedbackHub::new(FeedbackConfig {
            background: true,
            interval: Duration::from_secs(3600),
            ..quick_config()
        });
        hub.spawn_retrainer();
        hub.spawn_retrainer(); // idempotent
        hub.stop();
        hub.stop(); // idempotent
    }

    #[test]
    fn preloaded_model_serves_as_the_first_incumbent() {
        let outcome = dls_learn::train_selector(&dls_learn::TrainConfig {
            quick: true,
            mode: dls_learn::LabelMode::analytic_flat(),
            ..dls_learn::TrainConfig::default()
        });
        let hub = FeedbackHub::new(FeedbackConfig {
            initial_model: Some(outcome.model),
            ..quick_config()
        });
        assert_eq!(hub.version(), 1);
        assert_eq!(hub.ensemble_size(), 1, "preloaded tree is live before any retrain");
        // A clean retrain still gets through the guard (equal or better
        // regret on the shared holdout).
        assert!(matches!(
            hub.force_retrain(),
            RetrainOutcome::Accepted { .. } | RetrainOutcome::RolledBack { .. }
        ));
    }
}
