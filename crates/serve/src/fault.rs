//! Seeded, deterministic fault injection for the serving path.
//!
//! Heavy traffic from real networks means misbehaving peers, stalled
//! sockets, poisoned models, and overload are the *common* case, not the
//! exception. This module gives the rest of the crate one switchboard for
//! rehearsing those failures deterministically: a [`FaultPlan`] names
//! *where* faults may fire ([`FaultSite`]), *what* kind ([`FaultKind`]),
//! and *how often*, all derived from one seed so a chaos run is exactly
//! reproducible. Production servers carry a [`FaultInjector::none`]
//! injector — a `None` behind an `Option<Arc<_>>`, so the disabled path
//! costs one branch and no allocation.
//!
//! Two configuration styles:
//!
//! * **Rate-based** ([`FaultPlan::with`]) — every `decide` at a site rolls
//!   each configured kind independently; first hit wins. This is what the
//!   `repro_chaos` harness uses, with per-seed rates from
//!   [`FaultPlan::from_seed`].
//! * **Scripted** ([`FaultPlan::script`]) — an explicit per-site action
//!   sequence consumed one `decide` at a time, for unit tests that need a
//!   fault on exactly the nth operation.
//!
//! A plan can be [`FaultPlan::disarm`]ed at runtime (e.g. so a chaos
//! scenario can end with a clean probe against the same server), and every
//! injection is counted per site for post-run assertions.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Where in the serving path a fault may be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Reading request bytes from a connection (server side).
    ConnRead = 0,
    /// Writing response bytes to a connection (server side).
    ConnWrite = 1,
    /// Kernel execution of a drained predict batch.
    Exec = 2,
    /// Model lookup / registry load on the submit path.
    Registry = 3,
}

impl FaultSite {
    /// Every site, index-aligned with [`FaultSite::index`].
    pub const ALL: [FaultSite; 4] =
        [FaultSite::ConnRead, FaultSite::ConnWrite, FaultSite::Exec, FaultSite::Registry];

    /// Dense index for per-site tables.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::ConnRead => "conn_read",
            FaultSite::ConnWrite => "conn_write",
            FaultSite::Exec => "exec",
            FaultSite::Registry => "registry",
        }
    }
}

/// The kind of failure to inject (the rate-table axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Stall the operation for a seeded duration (slow peer / slow model).
    Delay = 0,
    /// Complete only a 1-byte slice of the I/O operation (dribbling peer).
    Partial = 1,
    /// Fail the operation as a connection reset.
    Reset = 2,
    /// Flip one bit in the bytes crossing this point (corrupt frame).
    Corrupt = 3,
    /// Panic mid-operation (poisoned model / kernel bug).
    Panic = 4,
    /// Fail with a typed unavailability error (registry load failure).
    Fail = 5,
}

impl FaultKind {
    /// Every kind, index-aligned with the internal rate table.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Delay,
        FaultKind::Partial,
        FaultKind::Reset,
        FaultKind::Corrupt,
        FaultKind::Panic,
        FaultKind::Fail,
    ];

    fn index(self) -> usize {
        self as usize
    }
}

/// A resolved injection: what the faulted operation must now do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sleep this long, then proceed normally.
    Delay(Duration),
    /// Complete at most one byte of the I/O operation.
    Partial,
    /// Fail as a connection reset.
    Reset,
    /// Flip one bit (the u64 picks which) in the data crossing this point.
    Corrupt(u64),
    /// Panic.
    Panic,
    /// Fail with a typed unavailability error.
    Fail,
}

/// SplitMix64: a tiny, high-quality deterministic generator. Public so the
/// chaos harness and the client's backoff jitter share one seeded source
/// without pulling in the vendored `rand` crate.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)` (`0` when `bound == 0`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

const NUM_SITES: usize = FaultSite::ALL.len();
const NUM_KINDS: usize = FaultKind::ALL.len();

/// A seeded schedule of injectable failures. Shared (`Arc`) between the
/// server front end, executor, and registry via [`FaultInjector`].
pub struct FaultPlan {
    seed: u64,
    armed: AtomicBool,
    /// Per-(site, kind) injection probability.
    rates: [[f64; NUM_KINDS]; NUM_SITES],
    /// Upper bound on injected delays.
    max_delay: Duration,
    /// Explicit per-site scripts, consumed before any rate roll.
    scripts: [Mutex<std::collections::VecDeque<FaultAction>>; NUM_SITES],
    /// Injections fired per site.
    counts: [AtomicU64; NUM_SITES],
    rng: Mutex<SplitMix64>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("armed", &self.armed.load(Ordering::Relaxed))
            .field("injected", &self.injected())
            .finish()
    }
}

impl FaultPlan {
    /// An armed plan with no faults configured; add them with
    /// [`FaultPlan::with`] and [`FaultPlan::script`].
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            armed: AtomicBool::new(true),
            rates: [[0.0; NUM_KINDS]; NUM_SITES],
            max_delay: Duration::from_millis(20),
            scripts: std::array::from_fn(|_| Mutex::new(std::collections::VecDeque::new())),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            rng: Mutex::new(SplitMix64::new(seed ^ 0xC4A5_F001)),
        }
    }

    /// A chaos preset: per-seed rates over the I/O and execution sites,
    /// moderate enough that most requests succeed but every run injects a
    /// healthy mix of delays, partial I/O, resets, and panics.
    pub fn from_seed(seed: u64) -> Self {
        let mut derive = SplitMix64::new(seed ^ 0x0DD5_EED5);
        let mut rate = |max: f64| derive.next_f64() * max;
        Self::new(seed)
            .with(FaultSite::ConnRead, FaultKind::Delay, rate(0.05))
            .with(FaultSite::ConnRead, FaultKind::Partial, rate(0.10))
            .with(FaultSite::ConnRead, FaultKind::Reset, rate(0.02))
            .with(FaultSite::ConnWrite, FaultKind::Delay, rate(0.05))
            .with(FaultSite::ConnWrite, FaultKind::Partial, rate(0.10))
            .with(FaultSite::ConnWrite, FaultKind::Reset, rate(0.02))
            .with(FaultSite::Exec, FaultKind::Delay, rate(0.05))
            .with(FaultSite::Registry, FaultKind::Fail, rate(0.05))
    }

    /// Sets the injection probability of `kind` at `site` (clamped to
    /// `[0, 1]`).
    pub fn with(mut self, site: FaultSite, kind: FaultKind, rate: f64) -> Self {
        self.rates[site.index()][kind.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// Bounds injected delays (default 20 ms).
    pub fn with_max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Appends explicit actions for `site`, consumed one `decide` at a
    /// time before any rate roll — deterministic "fault on the nth op".
    pub fn script(self, site: FaultSite, actions: impl IntoIterator<Item = FaultAction>) -> Self {
        self.scripts[site.index()].lock().expect("fault plan poisoned").extend(actions);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Stops all injection (counts and scripts are preserved).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Resumes injection after [`FaultPlan::disarm`].
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Whether injection is currently enabled.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }

    /// Total injections fired so far.
    pub fn injected(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Injections fired at one site.
    pub fn injected_at(&self, site: FaultSite) -> u64 {
        self.counts[site.index()].load(Ordering::Relaxed)
    }

    /// One injection decision at `site`: a scripted action if one is
    /// queued, else a rate roll over the configured kinds. `None` means
    /// "proceed normally".
    pub fn decide(&self, site: FaultSite) -> Option<FaultAction> {
        if !self.armed.load(Ordering::SeqCst) {
            return None;
        }
        if let Some(action) =
            self.scripts[site.index()].lock().expect("fault plan poisoned").pop_front()
        {
            self.counts[site.index()].fetch_add(1, Ordering::Relaxed);
            return Some(action);
        }
        let rates = &self.rates[site.index()];
        if rates.iter().all(|&r| r == 0.0) {
            return None;
        }
        let mut rng = self.rng.lock().expect("fault plan poisoned");
        for kind in FaultKind::ALL {
            let rate = rates[kind.index()];
            if rate > 0.0 && rng.next_f64() < rate {
                let action = match kind {
                    FaultKind::Delay => {
                        let cap = self.max_delay.as_micros().max(1) as u64;
                        FaultAction::Delay(Duration::from_micros(1 + rng.next_below(cap)))
                    }
                    FaultKind::Partial => FaultAction::Partial,
                    FaultKind::Reset => FaultAction::Reset,
                    FaultKind::Corrupt => FaultAction::Corrupt(rng.next_u64()),
                    FaultKind::Panic => FaultAction::Panic,
                    FaultKind::Fail => FaultAction::Fail,
                };
                drop(rng);
                self.counts[site.index()].fetch_add(1, Ordering::Relaxed);
                return Some(action);
            }
        }
        None
    }
}

/// The handle threaded through server, executor, and registry. The default
/// ([`FaultInjector::none`]) holds no plan: `decide` is a branch on a
/// `None` and nothing else — production builds pay nothing for the layer.
#[derive(Clone, Default)]
pub struct FaultInjector(Option<Arc<FaultPlan>>);

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("FaultInjector(none)"),
            Some(plan) => write!(f, "FaultInjector({plan:?})"),
        }
    }
}

impl FaultInjector {
    /// The no-op injector (the production default).
    pub fn none() -> Self {
        Self(None)
    }

    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self(Some(Arc::new(plan)))
    }

    /// An injector sharing an existing plan.
    pub fn shared(plan: Arc<FaultPlan>) -> Self {
        Self(Some(plan))
    }

    /// The underlying plan, when one is installed.
    pub fn plan(&self) -> Option<&Arc<FaultPlan>> {
        self.0.as_ref()
    }

    /// Whether a plan is installed (armed or not).
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// One injection decision at `site` (always `None` without a plan).
    pub fn decide(&self, site: FaultSite) -> Option<FaultAction> {
        self.0.as_ref()?.decide(site)
    }
}

/// Flips one seeded bit in `bytes` (no-op on an empty slice). Used by
/// [`FaultStream`] for [`FaultAction::Corrupt`] and by the chaos harness's
/// hostile-client frame mutator.
pub fn flip_bit(bytes: &mut [u8], which: u64) {
    if bytes.is_empty() {
        return;
    }
    let bit = which % (bytes.len() as u64 * 8);
    bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
}

/// An I/O wrapper injecting faults at one [`FaultSite`]. Wraps the raw
/// `TcpStream` (under the server's `BufReader`/`BufWriter`), so partial
/// reads/writes, stalls, resets, and corrupt bytes all happen at the same
/// place a hostile network would produce them.
pub struct FaultStream<S> {
    inner: S,
    injector: FaultInjector,
    site: FaultSite,
}

impl<S> FaultStream<S> {
    /// Wraps `inner`, injecting at `site`.
    pub fn new(inner: S, injector: FaultInjector, site: FaultSite) -> Self {
        Self { inner, injector, site }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    fn reset_error() -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::ConnectionReset, "injected connection reset")
    }
}

impl<S: std::io::Read> std::io::Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.injector.decide(self.site) {
            None => self.inner.read(buf),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            Some(FaultAction::Partial) => {
                let cap = buf.len().min(1);
                self.inner.read(&mut buf[..cap])
            }
            Some(FaultAction::Reset) => Err(Self::reset_error()),
            Some(FaultAction::Corrupt(which)) => {
                let n = self.inner.read(buf)?;
                flip_bit(&mut buf[..n], which);
                Ok(n)
            }
            Some(FaultAction::Panic) => panic!("injected read panic"),
            Some(FaultAction::Fail) => Err(std::io::Error::other("injected read failure")),
        }
    }
}

impl<S: std::io::Write> std::io::Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self.injector.decide(self.site) {
            None => self.inner.write(buf),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            Some(FaultAction::Partial) => {
                let cap = buf.len().min(1);
                self.inner.write(&buf[..cap])
            }
            Some(FaultAction::Reset) => Err(Self::reset_error()),
            Some(FaultAction::Corrupt(which)) => {
                let mut copy = buf.to_vec();
                flip_bit(&mut copy, which);
                self.inner.write(&copy).map(|n| n.min(buf.len()))
            }
            Some(FaultAction::Panic) => panic!("injected write panic"),
            Some(FaultAction::Fail) => Err(std::io::Error::other("injected write failure")),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn splitmix_is_deterministic_and_in_range() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
            let f = a.next_f64();
            assert!((0.0..1.0).contains(&f));
            b.next_f64();
            assert!(a.next_below(10) < 10);
            b.next_below(10);
        }
        assert!(SplitMix64::new(1).next_u64() != SplitMix64::new(2).next_u64());
    }

    #[test]
    fn none_injector_never_fires() {
        let inj = FaultInjector::none();
        assert!(!inj.is_active());
        for site in FaultSite::ALL {
            assert_eq!(inj.decide(site), None);
        }
    }

    #[test]
    fn scripted_actions_fire_in_order_then_stop() {
        let plan = FaultPlan::new(1).script(
            FaultSite::Exec,
            [FaultAction::Panic, FaultAction::Delay(Duration::from_micros(5))],
        );
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.decide(FaultSite::Exec), Some(FaultAction::Panic));
        assert!(matches!(inj.decide(FaultSite::Exec), Some(FaultAction::Delay(_))));
        assert_eq!(inj.decide(FaultSite::Exec), None);
        assert_eq!(inj.decide(FaultSite::ConnRead), None, "other sites untouched");
        assert_eq!(inj.plan().unwrap().injected_at(FaultSite::Exec), 2);
    }

    #[test]
    fn rate_one_always_fires_and_rate_zero_never() {
        let plan = FaultPlan::new(3).with(FaultSite::ConnRead, FaultKind::Reset, 1.0);
        for _ in 0..20 {
            assert_eq!(plan.decide(FaultSite::ConnRead), Some(FaultAction::Reset));
            assert_eq!(plan.decide(FaultSite::ConnWrite), None);
        }
        assert_eq!(plan.injected(), 20);
    }

    #[test]
    fn disarm_pauses_injection_and_arm_resumes() {
        let plan = FaultPlan::new(4).with(FaultSite::Exec, FaultKind::Panic, 1.0);
        assert_eq!(plan.decide(FaultSite::Exec), Some(FaultAction::Panic));
        plan.disarm();
        assert!(!plan.is_armed());
        assert_eq!(plan.decide(FaultSite::Exec), None);
        plan.arm();
        assert_eq!(plan.decide(FaultSite::Exec), Some(FaultAction::Panic));
    }

    #[test]
    fn same_seed_same_decisions() {
        let decisions = |seed: u64| {
            let plan = FaultPlan::from_seed(seed);
            (0..50).map(|_| plan.decide(FaultSite::ConnRead)).collect::<Vec<_>>()
        };
        assert_eq!(decisions(11), decisions(11));
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let mut bytes = vec![0u8; 8];
        flip_bit(&mut bytes, 13);
        let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
        flip_bit(&mut bytes, 13);
        assert!(bytes.iter().all(|&b| b == 0), "same bit flips back");
        flip_bit(&mut [], 5); // empty slice is a no-op, not a panic
    }

    #[test]
    fn fault_stream_injects_partial_reset_and_corrupt() {
        // Partial: only one byte of an 8-byte read completes.
        let plan = FaultPlan::new(5).script(FaultSite::ConnRead, [FaultAction::Partial]);
        let mut s =
            FaultStream::new(&[1u8, 2, 3, 4][..], FaultInjector::new(plan), FaultSite::ConnRead);
        let mut buf = [0u8; 4];
        assert_eq!(s.read(&mut buf).unwrap(), 1);

        // Reset: the read errors with ConnectionReset.
        let plan = FaultPlan::new(6).script(FaultSite::ConnRead, [FaultAction::Reset]);
        let mut s = FaultStream::new(&[1u8, 2][..], FaultInjector::new(plan), FaultSite::ConnRead);
        let err = s.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);

        // Corrupt on write: one bit differs from the source bytes.
        let plan = FaultPlan::new(7).script(FaultSite::ConnWrite, [FaultAction::Corrupt(3)]);
        let mut out = Vec::new();
        {
            let mut s = FaultStream::new(&mut out, FaultInjector::new(plan), FaultSite::ConnWrite);
            s.write_all(&[0u8, 0, 0]).unwrap();
            s.flush().unwrap();
        }
        let ones: u32 = out.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "{out:?}");
    }
}
