//! Property tests for the wire protocol: arbitrary messages round-trip
//! bit-exactly, pre-v3 frames cross-decode into the documented downgrade
//! (v1 additionally drops class/SLO; both decode with frame id 0), v3
//! frame ids survive a wire trip, and corrupted frames (truncations,
//! lying counts, oversized prefixes) are rejected with a [`ProtoError`],
//! never a panic or an attacker-sized allocation.

use dls_serve::proto::{
    decode_request, decode_request_framed, decode_request_versioned, decode_response,
    decode_response_framed, encode_request, encode_request_framed, encode_request_version,
    encode_response, encode_response_framed, encode_response_version, read_frame, write_frame,
    Request, RequestClass, Response, MAX_FRAME_LEN, PROTO_V1, PROTO_V2, PROTO_VERSION,
};
use dls_sparse::SparseVec;
use proptest::prelude::*;

/// Strategy: an arbitrary valid sparse vector (dim ≤ 32, values exact in
/// f64 so equality is bit-exact).
fn arb_sparse() -> impl Strategy<Value = SparseVec> {
    (1usize..32)
        .prop_flat_map(|dim| (Just(dim), proptest::collection::vec(-8i32..=8, dim)))
        .prop_map(|(dim, dense)| {
            let (mut indices, mut values) = (Vec::new(), Vec::new());
            for (i, v) in dense.into_iter().enumerate().take(dim) {
                if v != 0 {
                    indices.push(i);
                    values.push(f64::from(v) * 0.5);
                }
            }
            SparseVec::new(dim, indices, values)
        })
}

fn arb_name() -> impl Strategy<Value = String> {
    // Includes the empty string and multi-byte UTF-8.
    prop_oneof![
        Just(String::new()),
        (0u32..1000).prop_map(|i| format!("model-{i}")),
        Just("μοντέλο/日本語".to_string()),
    ]
}

fn arb_class() -> impl Strategy<Value = RequestClass> {
    prop_oneof![Just(RequestClass::Interactive), Just(RequestClass::Batch)]
}

fn arb_predict() -> impl Strategy<Value = Request> {
    (
        arb_name(),
        0u32..100_000,
        arb_class(),
        0u32..10_000_000,
        proptest::collection::vec(arb_sparse(), 0..6),
    )
        .prop_map(|(model, deadline_ms, class, slo_us, vectors)| Request::Predict {
            model,
            deadline_ms,
            class,
            slo_us,
            vectors,
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    let schedule = (
        arb_name(),
        1u64..64,
        1u64..64,
        proptest::collection::vec((0u64..64, 0u64..64, -4i32..=4), 0..40),
    )
        .prop_map(|(strategy, rows, cols, raw)| Request::Schedule {
            strategy,
            rows,
            cols,
            entries: raw.into_iter().map(|(r, c, v)| (r % rows, c % cols, f64::from(v))).collect(),
        });
    prop_oneof![arb_predict(), schedule, Just(Request::Stats), Just(Request::Shutdown)]
}

fn arb_response() -> impl Strategy<Value = Response> {
    let predictions = proptest::collection::vec(-1000i64..1000, 0..40)
        .prop_map(|vs| Response::Predictions(vs.into_iter().map(|v| v as f64 / 8.0).collect()));
    let scheduled =
        (arb_name(), arb_name(), proptest::collection::vec((arb_name(), -100i32..100), 0..9))
            .prop_map(|(format, reason, raw)| Response::Scheduled {
                format,
                reason,
                scores: raw.into_iter().map(|(n, s)| (n, f64::from(s) * 0.25)).collect(),
            });
    prop_oneof![
        predictions,
        scheduled,
        arb_name().prop_map(Response::Stats),
        Just(Response::Busy),
        Just(Response::TimedOut),
        Just(Response::ShuttingDown),
        arb_name().prop_map(Response::Error),
    ]
}

/// What a v1 wire trip preserves of a request: `Predict` drops class and
/// SLO (decoding as interactive / SLO 0); everything else is unchanged.
fn v1_downgrade(req: &Request) -> Request {
    match req {
        Request::Predict { model, deadline_ms, vectors, .. } => Request::Predict {
            model: model.clone(),
            deadline_ms: *deadline_ms,
            class: RequestClass::Interactive,
            slo_us: 0,
            vectors: vectors.clone(),
        },
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode → decode is the identity for every request, and the decoder
    /// reports the current version.
    #[test]
    fn requests_round_trip(req in arb_request()) {
        let payload = encode_request(&req);
        prop_assert_eq!(decode_request(&payload).unwrap(), req.clone());
        let (version, decoded) = decode_request_versioned(&payload).unwrap();
        prop_assert_eq!(version, PROTO_VERSION);
        prop_assert_eq!(decoded, req);
    }

    /// A v1 encoding of any request decodes as the documented downgrade,
    /// flagged with the legacy version — the cross-version compatibility
    /// contract.
    #[test]
    fn v1_requests_cross_decode(req in arb_request()) {
        let payload = encode_request_version(&req, PROTO_V1);
        let (version, decoded) = decode_request_versioned(&payload).unwrap();
        prop_assert_eq!(version, PROTO_V1);
        prop_assert_eq!(decoded, v1_downgrade(&req));
    }

    /// The full cross-version matrix: any request encoded at any accepted
    /// version decodes through the framed decoder at that version, with
    /// the documented downgrade and a frame id that only v3 can carry.
    #[test]
    fn cross_version_decoding_matrix(req in arb_request(), id in 0u64..u64::MAX) {
        for version in [PROTO_V1, PROTO_V2, PROTO_VERSION] {
            let payload = encode_request_framed(&req, version, id);
            let (got_version, got_id, decoded) = decode_request_framed(&payload).unwrap();
            prop_assert_eq!(got_version, version);
            prop_assert_eq!(got_id, if version >= PROTO_VERSION { id } else { 0 });
            let expect = if version == PROTO_V1 { v1_downgrade(&req) } else { req.clone() };
            prop_assert_eq!(decoded, expect);
        }
    }

    /// v3 frame ids survive a wire trip bit-exactly on requests and
    /// responses alike.
    #[test]
    fn frame_ids_round_trip(req in arb_request(), resp in arb_response(), id in 0u64..u64::MAX) {
        let (_, got, _) = decode_request_framed(&encode_request_framed(&req, PROTO_VERSION, id)).unwrap();
        prop_assert_eq!(got, id);
        let (_, got, _) = decode_response_framed(&encode_response_framed(&resp, PROTO_VERSION, id)).unwrap();
        prop_assert_eq!(got, id);
    }

    /// Class and SLO survive a v2 wire trip exactly (the fields v1 cannot
    /// carry).
    #[test]
    fn v2_predicts_preserve_class_and_slo(req in arb_predict()) {
        let (_, decoded) = decode_request_versioned(&encode_request(&req)).unwrap();
        prop_assert_eq!(decoded, req);
    }

    /// encode → decode is the identity for every response, at both
    /// protocol versions (responses are version-stable).
    #[test]
    fn responses_round_trip(resp in arb_response()) {
        prop_assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp.clone());
        let v1 = encode_response_version(&resp, PROTO_V1);
        prop_assert_eq!(decode_response(&v1).unwrap(), resp);
    }

    /// Every strict prefix of a valid request payload is rejected cleanly
    /// (no panic, no accept) — at both versions.
    #[test]
    fn truncated_requests_are_rejected(req in arb_request()) {
        for version in [PROTO_V1, PROTO_V2, PROTO_VERSION] {
            let payload = encode_request_version(&req, version);
            for cut in 0..payload.len() {
                prop_assert!(
                    decode_request_versioned(&payload[..cut]).is_err(),
                    "v{} prefix {} accepted", version, cut
                );
            }
        }
    }

    /// Framed transport round-trips and clean EOF is distinguishable.
    #[test]
    fn frames_round_trip(req in arb_request()) {
        let payload = encode_request(&req);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = &buf[..];
        prop_assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&payload[..]));
        prop_assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&payload[..]));
        prop_assert!(read_frame(&mut r).unwrap().is_none());
    }

    /// Flipping the version or tag byte never round-trips as valid. (The
    /// v3 tag sits *after* the 8-byte frame id, whose bytes are all
    /// payload — corrupting those changes the id, not validity.)
    #[test]
    fn corrupt_header_bytes_are_rejected(req in arb_request(), pick_tag in 0usize..2, val in 64u8..255) {
        let mut payload = encode_request(&req);
        let byte = if pick_tag == 1 { 9 } else { 0 };
        if payload[byte] != val {
            payload[byte] = val;
            prop_assert!(decode_request(&payload).is_err());
        }
    }
}

#[test]
fn oversized_length_prefix_is_refused_before_reading() {
    let prefix = ((MAX_FRAME_LEN as u32) + 1).to_le_bytes();
    let err = read_frame(&mut &prefix[..]).unwrap_err();
    // The refusal is typed and downcastable, not a stringly io error.
    assert_eq!(
        dls_serve::proto_error_of(&err),
        Some(&dls_serve::ProtoError::FrameTooLarge(MAX_FRAME_LEN + 1))
    );
}

#[test]
fn lying_interior_count_cannot_oversize_an_allocation() {
    // A Predict payload whose vector count claims far more elements than
    // the frame carries must fail before allocating for them.
    let req = Request::Predict {
        model: "m".into(),
        deadline_ms: 0,
        class: RequestClass::Interactive,
        slo_us: 0,
        vectors: vec![],
    };
    for version in [PROTO_V1, PROTO_V2, PROTO_VERSION] {
        let mut payload = encode_request_version(&req, version);
        let count_at = payload.len() - 4;
        payload[count_at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request_versioned(&payload).is_err(), "v{version} accepted a lying count");
    }
}
