//! Failure-path integration tests: mutation-fuzzed decoders, clients
//! dying mid-request, scripted kernel panics walking the degradation
//! ladder over live TCP, idle-connection reaping, and the retry client
//! recovering from injected connection resets.
//!
//! Determinism strategy: scripted [`FaultPlan`]s (explicit per-site action
//! queues) instead of rate rolls, armed only for the phase under test, so
//! every injected fault lands on a known operation.

use dls_core::LayoutScheduler;
use dls_serve::fault::{flip_bit, FaultAction, FaultInjector, FaultPlan, FaultSite, SplitMix64};
use dls_serve::proto::{
    decode_request_versioned, decode_response, encode_request_version, encode_response_version,
    read_frame, Request, RequestClass, Response, PROTO_V1, PROTO_VERSION,
};
use dls_serve::{
    start, ClientError, ExecutorConfig, ModelRegistry, PredictRequest, RetryClient, RetryPolicy,
    ServeClient, ServedModel, ServerConfig, ServerHandle,
};
use dls_sparse::SparseVec;
use dls_svm::{KernelKind, SvmModel};
use proptest::prelude::*;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIM: usize = 16;

fn test_model(salt: usize) -> SvmModel {
    let svs: Vec<SparseVec> = (0..6)
        .map(|i| {
            SparseVec::new(
                DIM,
                vec![i, i + 5, i + 10],
                vec![1.0 + (i + salt) as f64, -0.5 * i as f64 - 1.0, 0.25],
            )
        })
        .collect();
    let coefs = vec![1.0, -1.0, 0.5, -0.5, 0.75, -0.25];
    SvmModel::new(KernelKind::Gaussian { gamma: 0.125 }, svs, coefs, 0.375)
}

fn query(seed: usize) -> SparseVec {
    SparseVec::new(DIM, vec![seed % DIM], vec![1.0 + (seed % 7) as f64 * 0.5])
}

/// Serves models "m" and "n" with the given fault plan and timeouts.
fn serve_faulty(plan: Arc<FaultPlan>, config: ServerConfig) -> ServerHandle {
    let scheduler = LayoutScheduler::new();
    let registry = ModelRegistry::new()
        .with(ServedModel::new("m", test_model(0), &scheduler))
        .with(ServedModel::new("n", test_model(3), &scheduler));
    let config = ServerConfig {
        executor: ExecutorConfig {
            fault: FaultInjector::shared(plan),
            gather: Duration::ZERO,
            ..config.executor
        },
        ..config
    };
    start(registry, LayoutScheduler::new(), config).expect("bind loopback")
}

fn predict_one(c: &mut ServeClient, model: &str, seed: usize) -> Response {
    c.send(&PredictRequest::builder(model).vector(query(seed)).build()).expect("predict")
}

/// Polls the stats JSON until `probe` extracts a satisfied value.
fn wait_for_stat(addr: SocketAddr, what: &str, probe: impl Fn(&dls_core::json::JsonValue) -> bool) {
    let mut stats = ServeClient::connect(addr).expect("connect stats");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let doc = dls_core::json::parse(&stats.stats().expect("stats")).expect("valid stats json");
        if probe(&doc) {
            return;
        }
        assert!(Instant::now() < deadline, "stats never showed {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn fault_counter(doc: &dls_core::json::JsonValue, key: &str) -> u64 {
    doc.get("faults").and_then(|f| f.get(key)).and_then(|v| v.as_u64()).unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Satellite: mutation-fuzz the decoders. Byte flips, truncations, and
// splices of valid frames must never panic and never succeed *and* panic
// downstream — every failure is a typed ProtoError.
// ---------------------------------------------------------------------------

fn arb_request() -> impl Strategy<Value = Request> {
    let vec = (1usize..16).prop_map(|d| SparseVec::new(d, vec![d - 1], vec![0.5]));
    prop_oneof![
        (proptest::collection::vec(vec, 0..4), 0u32..100_000).prop_map(|(vectors, slo_us)| {
            Request::Predict {
                model: "m".to_string(),
                deadline_ms: 0,
                class: RequestClass::Interactive,
                slo_us,
                vectors,
            }
        }),
        Just(Request::Stats),
        Just(Request::Health),
        Just(Request::Shutdown),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        proptest::collection::vec(-100i32..100, 0..8)
            .prop_map(|vs| Response::Predictions(vs.into_iter().map(f64::from).collect())),
        Just(Response::Busy),
        Just(Response::Health("{\"status\":\"ok\"}".to_string())),
        (0u32..1000).prop_map(|i| Response::Error(format!("e{i}"))),
    ]
}

/// Applies `rounds` seeded mutations: bit flips, truncations, random
/// splices, and prefix/suffix swaps.
fn mutate(payload: &mut Vec<u8>, seed: u64, rounds: u32) {
    let mut rng = SplitMix64::new(seed);
    for _ in 0..rounds {
        match rng.next_below(4) {
            0 => flip_bit(payload, rng.next_u64()),
            1 => {
                let keep = rng.next_below(payload.len() as u64 + 1) as usize;
                payload.truncate(keep);
            }
            2 => {
                let at = rng.next_below(payload.len() as u64 + 1) as usize;
                payload.insert(at, rng.next_u64() as u8);
            }
            _ => {
                if !payload.is_empty() {
                    let at = rng.next_below(payload.len() as u64) as usize;
                    payload[at] = rng.next_u64() as u8;
                }
            }
        }
    }
}

proptest! {
    #[test]
    fn mutated_request_frames_never_panic_the_decoder(
        req in arb_request(),
        v1 in 0u8..2,
        seed in 0u64..u64::MAX,
        rounds in 1u32..12,
    ) {
        let version = if v1 == 1 { PROTO_V1 } else { PROTO_VERSION };
        let mut payload = encode_request_version(&req, version);
        mutate(&mut payload, seed, rounds);
        // Must return (typed error or an accidentally-valid message) —
        // a panic fails the test harness itself.
        let _ = decode_request_versioned(&payload);
    }

    #[test]
    fn mutated_response_frames_never_panic_the_decoder(
        resp in arb_response(),
        v1 in 0u8..2,
        seed in 0u64..u64::MAX,
        rounds in 1u32..12,
    ) {
        let version = if v1 == 1 { PROTO_V1 } else { PROTO_VERSION };
        let mut payload = encode_response_version(&resp, version);
        mutate(&mut payload, seed, rounds);
        let _ = decode_response(&payload);
    }

    #[test]
    fn mutated_byte_streams_never_panic_read_frame(
        bytes in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        // Arbitrary bytes as a framed stream: every outcome is Ok(None)
        // (clean EOF), Ok(Some) (a small frame), or a typed io error.
        let mut r = &bytes[..];
        while let Ok(Some(_)) = read_frame(&mut r) {}
    }
}

// ---------------------------------------------------------------------------
// Satellite: a client dying mid-request must not take the server (or any
// other client's request) with it.
// ---------------------------------------------------------------------------

#[test]
fn clients_dying_mid_request_leave_others_served() {
    let plan = Arc::new(FaultPlan::new(1));
    plan.disarm(); // plumbing only; this test's faults are real sockets
    let handle = serve_faulty(Arc::clone(&plan), ServerConfig::default());
    let addr = handle.local_addr();
    let model = test_model(0);

    // Victim 1: a complete request lands in the queue, then the socket
    // closes before the reply can be written.
    handle.executor().pause(true);
    {
        let mut raw = TcpStream::connect(addr).expect("connect victim");
        let req = Request::from(&PredictRequest::builder("m").vector(query(1)).build());
        let payload = encode_request_version(&req, PROTO_VERSION);
        raw.write_all(&(payload.len() as u32).to_le_bytes()).expect("prefix");
        raw.write_all(&payload).expect("body");
        raw.flush().ok();
        // Give the server time to enqueue it before the drop closes us.
        std::thread::sleep(Duration::from_millis(50));
    }

    // Victim 2: half a frame (the prefix promises 100 bytes, 10 arrive),
    // then the socket dies — the server sees EOF mid-frame.
    {
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        raw.write_all(&100u32.to_le_bytes()).expect("prefix");
        raw.write_all(&[0u8; 10]).expect("partial body");
        raw.flush().ok();
    }
    handle.executor().pause(false);

    // A well-behaved client is completely unaffected.
    let mut c = ServeClient::connect(addr).expect("connect survivor");
    match predict_one(&mut c, "m", 7) {
        Response::Predictions(values) => {
            assert_eq!(values[0].to_bits(), model.decision_function(&query(7)).to_bits());
        }
        other => panic!("survivor got {other:?}"),
    }

    // Both deaths were classified, not hung: the reset counter moved.
    wait_for_stat(addr, "conn_resets >= 1", |doc| fault_counter(doc, "conn_resets") >= 1);
    drop(c);
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Tentpole: scripted kernel panics over live TCP walk the health ladder —
// degrade, quarantine, typed refusals — while the sibling model keeps
// serving bit-exact answers.
// ---------------------------------------------------------------------------

#[test]
fn scripted_exec_panics_degrade_then_quarantine_over_the_wire() {
    let plan = Arc::new(
        FaultPlan::new(2)
            .script(FaultSite::Exec, [FaultAction::Panic, FaultAction::Panic, FaultAction::Panic]),
    );
    let handle = serve_faulty(Arc::clone(&plan), ServerConfig::default());
    let addr = handle.local_addr();
    let mut c = ServeClient::connect(addr).expect("connect");

    // Three sequential predicts, three scripted panics: each answers a
    // typed error (never a hang, never a dead worker).
    for i in 0..3 {
        match predict_one(&mut c, "m", i) {
            Response::Error(msg) => {
                assert!(msg.contains("panicked"), "panic {i}: unexpected message {msg:?}")
            }
            other => panic!("panic {i}: unexpected response {other:?}"),
        }
    }
    assert_eq!(plan.injected_at(FaultSite::Exec), 3);

    // The fourth submission is refused at admission: quarantined.
    match predict_one(&mut c, "m", 9) {
        Response::Error(msg) => assert!(msg.contains("quarantined"), "{msg}"),
        other => panic!("expected quarantine refusal, got {other:?}"),
    }

    // The sibling model is untouched and bit-exact.
    let sibling = test_model(3);
    match predict_one(&mut c, "n", 5) {
        Response::Predictions(values) => {
            assert_eq!(values[0].to_bits(), sibling.decision_function(&query(5)).to_bits());
        }
        other => panic!("sibling got {other:?}"),
    }

    // The health endpoint reports the ladder.
    let health = match c.request(&Request::Health).expect("health") {
        Response::Health(json) => json,
        other => panic!("expected Health, got {other:?}"),
    };
    let doc = dls_core::json::parse(&health).expect("valid health json");
    assert_eq!(doc.get("status").and_then(|s| s.as_str()), Some("degraded"));
    let models = doc.get("models").and_then(|m| m.as_arr()).expect("models array");
    let rung = |name: &str| {
        models
            .iter()
            .find(|m| m.get("model").and_then(|n| n.as_str()) == Some(name))
            .and_then(|m| m.get("health"))
            .and_then(|h| h.as_str())
            .map(str::to_string)
    };
    assert_eq!(rung("m").as_deref(), Some("quarantined"));
    assert_eq!(rung("n").as_deref(), Some("healthy"));

    // And the stats JSON carries the event counters.
    let doc = dls_core::json::parse(&c.stats().expect("stats")).expect("valid stats json");
    assert_eq!(fault_counter(&doc, "exec_panics"), 3);
    let degraded =
        doc.get("degradation").and_then(|d| d.get("models_quarantined")).and_then(|v| v.as_u64());
    assert_eq!(degraded, Some(1));
    drop(c);
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Tentpole: idle connections self-reap; a reaped peer gets a typed
// ConnectionLost from the client, and the server counts the reap.
// ---------------------------------------------------------------------------

#[test]
fn idle_connections_are_reaped_and_surface_as_connection_lost() {
    let plan = Arc::new(FaultPlan::new(3));
    plan.disarm();
    let config = ServerConfig { idle_timeout: Duration::from_millis(100), ..Default::default() };
    let handle = serve_faulty(Arc::clone(&plan), config);
    let addr = handle.local_addr();

    let mut idler = ServeClient::connect(addr).expect("connect idler");
    assert!(matches!(predict_one(&mut idler, "m", 1), Response::Predictions(_)));

    // Sit idle well past the timeout; the server reaps at the frame
    // boundary (nothing in flight, so closing is safe).
    std::thread::sleep(Duration::from_millis(400));
    wait_for_stat(addr, "conn_idle_reaped >= 1", |doc| fault_counter(doc, "conn_idle_reaped") >= 1);

    // The reaped client's next request fails typed, not hung.
    let req = Request::from(&PredictRequest::builder("m").vector(query(2)).build());
    match idler.try_request(&req) {
        Err(ClientError::ConnectionLost(_)) => {}
        other => panic!("expected ConnectionLost after reap, got {other:?}"),
    }

    // Fresh connections serve as normal.
    let mut c = ServeClient::connect(addr).expect("reconnect");
    assert!(matches!(predict_one(&mut c, "m", 3), Response::Predictions(_)));
    drop(c);
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Tentpole + satellite: scripted connection resets. The plain client
// surfaces a typed ConnectionLost; the retry client reconnects and
// completes the same request bit-exactly.
// ---------------------------------------------------------------------------

#[test]
fn retry_client_recovers_from_scripted_resets_where_plain_client_errors() {
    let plan = Arc::new(
        FaultPlan::new(4).script(FaultSite::ConnRead, [FaultAction::Reset, FaultAction::Reset]),
    );
    plan.disarm();
    let handle = serve_faulty(Arc::clone(&plan), ServerConfig::default());
    let addr = handle.local_addr();
    let model = test_model(0);
    let req = Request::from(&PredictRequest::builder("m").vector(query(4)).build());

    // Baseline with injection off: the request serves.
    let mut plain = ServeClient::connect(addr).expect("connect plain");
    assert!(matches!(plain.try_request(&req), Ok(Response::Predictions(_))));

    // Arm: the server's next read on this connection takes the scripted
    // reset, and the plain client sees a typed, retryable ConnectionLost
    // — the PR-6 client surfaced a raw io::Error here. The handler's
    // in-flight blocking read made its injection decision before arming,
    // so wait out one socket tick to guarantee the *next* read (which
    // pops the script) is the one that sees our frame.
    plan.arm();
    std::thread::sleep(Duration::from_millis(150));
    let err = plain.try_request(&req).expect_err("reset should fail the plain client");
    assert!(matches!(err, ClientError::ConnectionLost(_)), "got {err:?}");
    assert!(err.is_retryable());
    drop(plain);

    // The retry client eats the second scripted reset, reconnects after a
    // jittered backoff, and completes the identical request.
    let policy = RetryPolicy {
        base_backoff: Duration::from_micros(200),
        max_backoff: Duration::from_millis(2),
        ..Default::default()
    };
    let mut retry = RetryClient::with_policy(addr.to_string(), policy);
    match retry.request(&req).expect("retry client should recover") {
        Response::Predictions(values) => {
            assert_eq!(values[0].to_bits(), model.decision_function(&query(4)).to_bits());
        }
        other => panic!("retry client got {other:?}"),
    }
    assert!(retry.retries_left() < RetryPolicy::default().retry_budget, "no retry was spent");
    assert_eq!(plan.injected_at(FaultSite::ConnRead), 2, "both scripted resets fired");

    // Injection spent: the service is fully healthy again.
    plan.disarm();
    wait_for_stat(addr, "conn_resets >= 2", |doc| fault_counter(doc, "conn_resets") >= 2);
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Tentpole: a scripted corrupted response write surfaces as a typed
// client error (never silently-wrong data, never a hang).
// ---------------------------------------------------------------------------

#[test]
fn corrupted_response_writes_fail_typed_on_the_client() {
    // Bit 0 lands in the length prefix of the first response write, so
    // the client's framing desynchronises in a detectable way.
    let plan = Arc::new(FaultPlan::new(5).script(FaultSite::ConnWrite, [FaultAction::Corrupt(0)]));
    let handle = serve_faulty(Arc::clone(&plan), ServerConfig::default());
    let addr = handle.local_addr();

    let mut c = ServeClient::connect(addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_millis(500))).expect("read timeout");
    let req = Request::from(&PredictRequest::builder("m").vector(query(6)).build());
    match c.try_request(&req) {
        // A shortened prefix decodes garbage (Protocol), a lengthened one
        // starves the read (Timeout), a wildly large one trips the frame
        // bound — all typed, none silent.
        Err(ClientError::Protocol(_) | ClientError::Timeout | ClientError::FrameTooLarge(_)) => {}
        Err(ClientError::ConnectionLost(_)) => {} // prefix > MAX_FRAME closes
        other => panic!("corrupted response produced {other:?}"),
    }
    assert_eq!(plan.injected_at(FaultSite::ConnWrite), 1);

    // The service itself is unharmed.
    plan.disarm();
    let mut fresh = ServeClient::connect(addr).expect("reconnect");
    assert!(matches!(predict_one(&mut fresh, "m", 6), Response::Predictions(_)));
    drop((c, fresh));
    handle.shutdown();
}
