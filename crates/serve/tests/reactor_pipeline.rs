//! Loopback tests for the reactor front end and protocol-v3 pipelining:
//! out-of-order response reassembly in [`PipelinedClient`], pre-v3
//! clients interoperating with a v3 server, the reactor gauges in the
//! stats JSON, and idle-worker stealing across executor shards.

use dls_core::LayoutScheduler;
use dls_serve::{
    start, FaultAction, FaultInjector, FaultPlan, FaultSite, Frontend, ModelRegistry,
    PipelinedClient, PredictRequest, Request, Response, ServeClient, ServedModel, ServerConfig,
    ServerHandle, PROTO_V1, PROTO_V2,
};
use dls_sparse::SparseVec;
use dls_svm::{KernelKind, SvmModel};
use std::time::{Duration, Instant};

const DIM: usize = 16;

fn test_model() -> SvmModel {
    let svs: Vec<SparseVec> = (0..6)
        .map(|i| {
            SparseVec::new(
                DIM,
                vec![i, i + 5, i + 10],
                vec![1.0 + i as f64, -0.5 * i as f64 - 1.0, 0.25],
            )
        })
        .collect();
    let coefs = vec![1.0, -1.0, 0.5, -0.5, 0.75, -0.25];
    SvmModel::new(KernelKind::Gaussian { gamma: 0.125 }, svs, coefs, 0.375)
}

fn query(seed: usize) -> SparseVec {
    SparseVec::new(DIM, vec![seed % DIM], vec![1.0 + (seed % 7) as f64 * 0.5])
}

fn serve_reactor() -> ServerHandle {
    let registry =
        ModelRegistry::new().with(ServedModel::new("m", test_model(), &LayoutScheduler::new()));
    let config = ServerConfig { frontend: Frontend::Reactor, ..ServerConfig::default() };
    start(registry, LayoutScheduler::new(), config).expect("bind loopback")
}

fn predict_req(seed: usize) -> Request {
    Request::from(&PredictRequest::builder("m").vector(query(seed)).build())
}

fn stat_u64(json: &str, section: &str, key: &str) -> u64 {
    let doc = dls_core::json::parse(json).expect("valid stats json");
    doc.get(section)
        .and_then(|s| s.get(key))
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("stats.{section}.{key} missing in {json}"))
}

/// The pin for out-of-order pipelining: with the executor paused, a
/// submitted `Predict` parks in flight while a later `Stats` frame on the
/// same connection is answered inline — so the *second* request's
/// response arrives *first*, and `wait` reassembles by frame id.
#[test]
fn pipelined_responses_arrive_out_of_order_and_reassemble() {
    let handle = serve_reactor();
    let mut client = PipelinedClient::connect(handle.local_addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    handle.executor().pause(true);
    let predict_id = client.submit(&predict_req(1)).expect("submit predict");
    let stats_id = client.submit(&Request::Stats).expect("submit stats");
    assert_eq!(client.in_flight(), 2);

    // The stats frame was submitted second but is answered first: the
    // predict is parked on the paused executor.
    let (first_id, first) = client.recv().expect("first response");
    assert_eq!(first_id, stats_id, "expected the later frame to finish first");
    let json = match first {
        Response::Stats(json) => json,
        other => panic!("expected Stats, got {other:?}"),
    };
    assert_eq!(stat_u64(&json, "reactor", "pipelined_in_flight"), 1);

    handle.executor().pause(false);
    match client.wait(predict_id).expect("predict response") {
        Response::Predictions(vals) => assert_eq!(vals.len(), 1),
        other => panic!("expected Predictions, got {other:?}"),
    }
    assert_eq!(client.in_flight(), 0);
    handle.shutdown();
}

/// Many pipelined predicts on one socket all come back, each tagged with
/// its own frame id, and coalesce into batched sweeps server-side.
#[test]
fn a_pipeline_of_predicts_completes_exactly_once_per_frame() {
    let handle = serve_reactor();
    let mut client = PipelinedClient::connect(handle.local_addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    let ids: Vec<u64> = (0..32).map(|i| client.submit(&predict_req(i)).expect("submit")).collect();
    let mut seen = Vec::new();
    for _ in 0..ids.len() {
        let (id, resp) = client.recv().expect("recv");
        match resp {
            Response::Predictions(vals) => assert_eq!(vals.len(), 1),
            other => panic!("expected Predictions, got {other:?}"),
        }
        seen.push(id);
    }
    seen.sort_unstable();
    assert_eq!(seen, ids, "every frame answered exactly once");
    handle.shutdown();
}

/// Pre-v3 clients speak to the reactor unchanged: one-in-flight
/// request/response at their own version, class/SLO dropped only for v1.
#[test]
fn v1_and_v2_clients_interop_with_the_reactor() {
    let handle = serve_reactor();
    for version in [PROTO_V1, PROTO_V2] {
        let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
        client.set_protocol_version(version).expect("supported version");
        client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        match client.send(&PredictRequest::builder("m").vector(query(3)).build()) {
            Ok(Response::Predictions(vals)) => assert_eq!(vals.len(), 1),
            other => panic!("v{version} predict failed: {other:?}"),
        }
        let json = client.stats().expect("stats over the wire");
        assert!(json.contains("\"reactor\""), "v{version} stats lacks the reactor section");
    }
    handle.shutdown();
}

/// The reactor gauges move: connections are counted while open and
/// released on close, and the loop records wakeups.
#[test]
fn reactor_gauges_track_connections_and_wakeups() {
    let handle = serve_reactor();
    let mut a = ServeClient::connect(handle.local_addr()).expect("connect a");
    let b = ServeClient::connect(handle.local_addr()).expect("connect b");
    a.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let json = a.stats().expect("stats");
    assert!(stat_u64(&json, "reactor", "open_connections") >= 2, "both conns counted: {json}");
    assert!(stat_u64(&json, "reactor", "wakeups") >= 1);

    drop(b);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let json = a.stats().expect("stats");
        if stat_u64(&json, "reactor", "open_connections") <= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "closed connection never released its gauge");
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.shutdown();
    assert_eq!(
        handle.stats().reactor.open_connections.load(std::sync::atomic::Ordering::Relaxed),
        0
    );
}

/// With two workers and all load on one model lane, the second worker's
/// home shard is empty — it can only contribute by stealing. Scripted
/// `Exec` delays pin worker 0 in a sleep mid-sweep, guaranteeing the
/// idle worker finds ready work to take even on a single-core host.
#[test]
fn idle_workers_steal_from_loaded_shards() {
    let registry =
        ModelRegistry::new().with(ServedModel::new("m", test_model(), &LayoutScheduler::new()));
    let mut config = ServerConfig { frontend: Frontend::Reactor, ..ServerConfig::default() };
    config.executor.workers = 2;
    config.executor.max_block = 1; // one vector per sweep: plenty of chances to steal
    let plan = FaultPlan::new(7).script(
        FaultSite::Exec,
        std::iter::repeat_n(FaultAction::Delay(Duration::from_millis(5)), 16),
    );
    config.executor.fault = FaultInjector::shared(std::sync::Arc::new(plan));
    let handle = start(registry, LayoutScheduler::new(), config).expect("bind loopback");

    let mut client = PipelinedClient::connect(handle.local_addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    handle.executor().pause(true);
    let ids: Vec<u64> = (0..48).map(|i| client.submit(&predict_req(i)).expect("submit")).collect();
    // Wait until the frames are parked in flight before releasing the pool.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.stats().reactor.pipelined_in_flight.load(std::sync::atomic::Ordering::Relaxed)
        < ids.len() as u64
    {
        assert!(Instant::now() < deadline, "frames never parked");
        std::thread::sleep(Duration::from_millis(2));
    }
    handle.executor().pause(false);
    for _ in &ids {
        let (_, resp) = client.recv().expect("recv");
        assert!(matches!(resp, Response::Predictions(_)), "got {resp:?}");
    }
    let steals = handle.stats().reactor.steals.load(std::sync::atomic::Ordering::Relaxed);
    assert!(steals > 0, "worker 1 never stole from the loaded lane");
    handle.shutdown();
}
