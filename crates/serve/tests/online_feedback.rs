//! End-to-end loopback test of the online-learning loop: live traffic →
//! telemetry observations → forced retrain cycles → hot model swaps —
//! with zero dropped requests across the swaps.

use dls_core::LayoutScheduler;
use dls_serve::{
    start, ExecutorConfig, FeedbackConfig, ModelRegistry, PredictRequest, Response, RetrainOutcome,
    ScheduleRequest, ServeClient, ServedModel, ServerConfig,
};
use dls_sparse::SparseVec;
use dls_svm::{KernelKind, SvmModel};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 16;

fn test_model() -> SvmModel {
    let svs: Vec<SparseVec> = (0..6)
        .map(|i| {
            SparseVec::new(
                DIM,
                vec![i, i + 5, i + 10],
                vec![1.0 + i as f64, -0.5 * i as f64 - 1.0, 0.25],
            )
        })
        .collect();
    SvmModel::new(KernelKind::Linear, svs, vec![1.0, -1.0, 0.5, -0.5, 0.75, -0.25], 0.375)
}

fn query(seed: usize) -> SparseVec {
    SparseVec::new(DIM, vec![seed % DIM], vec![1.0 + (seed % 7) as f64 * 0.5])
}

/// Serving → telemetry log → retrain → hot swap, with traffic in flight
/// the whole time. Pins the acceptance criterion directly: every request
/// sent during the swaps is answered with predictions (no drops, no
/// errors, no refusals), and the active model version bumps.
#[test]
fn hot_swap_under_live_traffic_drops_nothing() {
    let hub = dls_serve::FeedbackHub::new(FeedbackConfig {
        min_observations: 0,
        background: false, // cycles forced below, deterministically
        ..FeedbackConfig::default()
    });
    // The serving scheduler selects through the hub's swappable handle, so
    // accepted retrains take effect on the very next schedule request.
    let scheduler = LayoutScheduler::with_selector(hub.selector());
    let registry =
        ModelRegistry::new().with(ServedModel::new("m", test_model(), &LayoutScheduler::new()));
    let config = ServerConfig {
        executor: ExecutorConfig { feedback: Some(Arc::clone(&hub)), ..Default::default() },
        ..Default::default()
    };
    let handle = start(registry, scheduler, config).expect("bind loopback");
    let addr = handle.local_addr();

    // Background traffic: four clients stream predicts (and the occasional
    // schedule) for the whole duration of both retrain cycles.
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|t| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = ServeClient::connect(addr).expect("connect");
                let mut sent = 0u64;
                let mut answered = 0u64;
                let mut k = 0usize;
                while !stop.load(Ordering::Relaxed) || sent < 20 {
                    k += 1;
                    sent += 1;
                    let resp = if k.is_multiple_of(10) {
                        let entries: Vec<(u64, u64, f64)> =
                            (0..12).map(|i| (i % 6, (i * 7) % 8, 1.0 + i as f64)).collect();
                        c.send(&ScheduleRequest::builder(6, 8).entries(entries).build())
                            .expect("schedule io")
                    } else {
                        c.send(&PredictRequest::builder("m").vector(query(k + t * 31)).build())
                            .expect("predict io")
                    };
                    match resp {
                        Response::Predictions(v) => {
                            assert_eq!(v.len(), 1);
                            answered += 1;
                        }
                        Response::Scheduled { format, .. } => {
                            assert!(!format.is_empty());
                            answered += 1;
                        }
                        other => panic!("client {t}: dropped/refused request: {other:?}"),
                    }
                }
                (sent, answered)
            })
        })
        .collect();

    // Let traffic build telemetry, then force two retrain cycles: the
    // first publishes a fresh tree, the second plateaus into the forest.
    // Both swap the live selector while the clients above keep sending.
    std::thread::sleep(Duration::from_millis(100));
    assert!(hub.ring().total_appended() > 0, "sweeps must be recorded as observations");
    assert_eq!(hub.version(), 1);
    let first = hub.force_retrain();
    assert!(matches!(first, RetrainOutcome::Accepted { version: 2, .. }), "{first:?}");
    std::thread::sleep(Duration::from_millis(50));
    let second = hub.force_retrain();
    match second {
        RetrainOutcome::Accepted { version, ensemble_size, .. } => {
            assert_eq!(version, 3);
            assert!((3..=7).contains(&ensemble_size), "plateau should publish a forest");
        }
        other => panic!("second cycle should be accepted: {other:?}"),
    }
    assert_eq!(hub.version(), 3);

    stop.store(true, Ordering::Relaxed);
    let mut total_sent = 0;
    let mut total_answered = 0;
    for c in clients {
        let (sent, answered) = c.join().expect("client thread");
        total_sent += sent;
        total_answered += answered;
    }
    assert_eq!(total_sent, total_answered, "every request answered across both swaps");
    assert!(total_sent >= 80, "traffic actually flowed: {total_sent}");

    // The stats endpoint surfaces the loop: active version, ensemble size,
    // observation counts, retrain outcomes — and the hard zero-drop ledger.
    let mut c = ServeClient::connect(addr).expect("connect");
    let doc = dls_core::json::parse(&c.stats().expect("stats")).expect("valid stats json");
    let sel = doc.get("selector").expect("selector section");
    assert_eq!(sel.get("active_version").and_then(|v| v.as_u64()), Some(3));
    let ensemble = sel.get("ensemble_size").and_then(|v| v.as_u64()).expect("ensemble size");
    assert!((3..=7).contains(&ensemble), "{ensemble}");
    assert!(sel.get("observations").and_then(|v| v.as_u64()).unwrap_or(0) > 0);
    assert_eq!(sel.get("retrains_accepted").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(sel.get("retrains_rolled_back").and_then(|v| v.as_u64()), Some(0));
    assert_eq!(sel.get("last_retrain_outcome").and_then(|v| v.as_str()), Some("accepted"));
    let predict = doc.get("predict").expect("predict section");
    for refusal in ["busy", "timed_out", "errors"] {
        assert_eq!(
            predict.get(refusal).and_then(|v| v.as_u64()),
            Some(0),
            "{refusal} must stay zero during hot swaps"
        );
    }
    drop(c);
    handle.shutdown();
}
