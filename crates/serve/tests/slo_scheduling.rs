//! Loopback tests for the SLO-aware serving redesign: protocol-v1 clients
//! against a v2 server, classed requests with per-class telemetry, and
//! each shipped queue discipline serving end to end.

use dls_core::LayoutScheduler;
use dls_serve::{
    parse_discipline, start, ExecutorConfig, ModelRegistry, PredictRequest, RequestClass, Response,
    ScheduleRequest, ServeClient, ServedModel, ServerConfig, ServerHandle, DISCIPLINES, PROTO_V1,
};
use dls_sparse::SparseVec;
use dls_svm::{KernelKind, SvmModel};
use std::time::Duration;

const DIM: usize = 12;

fn test_model() -> SvmModel {
    let svs: Vec<SparseVec> =
        (0..5).map(|i| SparseVec::new(DIM, vec![i, i + 6], vec![1.0 + i as f64, -0.5])).collect();
    SvmModel::new(KernelKind::Linear, svs, vec![1.0, -1.0, 0.5, -0.5, 0.25], 0.125)
}

fn serve(executor: ExecutorConfig) -> ServerHandle {
    let registry =
        ModelRegistry::new().with(ServedModel::new("m", test_model(), &LayoutScheduler::new()));
    let config = ServerConfig { executor, ..Default::default() };
    start(registry, LayoutScheduler::new(), config).expect("bind loopback")
}

fn query(seed: usize) -> SparseVec {
    SparseVec::new(DIM, vec![seed % DIM], vec![1.0])
}

/// Acceptance: a legacy v1 client interoperates with the v2 server — its
/// predicts (decoded as interactive, legacy deadline), schedules, stats,
/// and shutdown all round-trip, and its traffic lands on the interactive
/// class ledger.
#[test]
fn v1_clients_interoperate_with_a_v2_server() {
    let handle = serve(ExecutorConfig::default());
    let model = test_model();
    let mut c = ServeClient::connect(handle.local_addr()).expect("connect");
    c.set_protocol_version(PROTO_V1).expect("v1 supported");
    assert_eq!(c.protocol_version(), PROTO_V1);
    assert!(c.set_protocol_version(9).is_err());

    // Predict: class/SLO are absent from v1 frames, so the builder's batch
    // markings are dropped on the wire — the server must still answer, as
    // interactive.
    let req = PredictRequest::builder("m")
        .vector(query(3))
        .class(RequestClass::Batch) // cannot survive a v1 encoding
        .build();
    match c.send(&req).expect("predict") {
        Response::Predictions(values) => {
            assert_eq!(values.len(), 1);
            assert_eq!(values[0].to_bits(), model.decision_function(&query(3)).to_bits());
        }
        other => panic!("unexpected response {other:?}"),
    }
    assert_eq!(handle.stats().class(RequestClass::Interactive).completed(), 1);
    assert_eq!(handle.stats().class(RequestClass::Batch).completed(), 0);

    // Schedule and stats are version-stable.
    let sched = ScheduleRequest::builder(4, 4).strategy("csr").entries((0..4).map(|i| (i, i, 1.0)));
    assert!(matches!(c.send(&sched.build()).expect("schedule"), Response::Scheduled { .. }));
    let stats = c.stats().expect("stats");
    assert!(stats.contains("slo_violation_rate"), "stats JSON lost the SLO field: {stats}");
    assert_eq!(c.shutdown().expect("shutdown"), Response::ShuttingDown);
    drop(c);
    handle.shutdown();
}

/// Classed requests round-trip on v2 and are accounted on their own
/// ledgers, with per-class SLO fields in the snapshot.
#[test]
fn v2_classes_land_on_their_own_ledgers() {
    let handle = serve(ExecutorConfig::default());
    let mut c = ServeClient::connect(handle.local_addr()).expect("connect");

    let interactive =
        PredictRequest::builder("m").vector(query(0)).slo(Duration::from_secs(2)).build();
    assert!(matches!(c.send(&interactive).expect("predict"), Response::Predictions(_)));
    let batch =
        PredictRequest::builder("m").vectors((0..3).map(query)).class(RequestClass::Batch).build();
    assert!(matches!(c.send(&batch).expect("predict"), Response::Predictions(_)));

    let doc = dls_core::json::parse(&c.stats().expect("stats")).expect("valid stats json");
    let classes = doc.get("classes").expect("classes in snapshot");
    for class in RequestClass::ALL {
        let entry = classes.get(class.name()).expect("per-class entry");
        assert_eq!(entry.get("ok").and_then(|v| v.as_u64()), Some(1), "{class} ok count");
        assert_eq!(
            entry.get("slo_violation_rate").and_then(|v| v.as_f64()),
            Some(0.0),
            "{class} violation rate"
        );
    }
    drop(c);
    handle.shutdown();
}

/// Every shipped discipline serves mixed-class traffic end to end (the
/// scheduling *order* contracts live in the executor unit tests; this
/// pins that each discipline is wireable and drains).
#[test]
fn every_discipline_serves_mixed_traffic() {
    for name in DISCIPLINES {
        let handle = serve(ExecutorConfig {
            discipline: parse_discipline(name).expect("known discipline"),
            gather: Duration::from_micros(200),
            ..Default::default()
        });
        assert_eq!(handle.executor().discipline().name(), name);
        let mut c = ServeClient::connect(handle.local_addr()).expect("connect");
        for i in 0..4 {
            let class = if i % 2 == 0 { RequestClass::Interactive } else { RequestClass::Batch };
            let req = PredictRequest::builder("m").vector(query(i)).class(class).build();
            assert!(
                matches!(c.send(&req).expect("predict"), Response::Predictions(_)),
                "discipline {name} failed request {i}"
            );
        }
        let mut completed = 0;
        for class in RequestClass::ALL {
            completed += handle.stats().class(class).completed();
        }
        assert_eq!(completed, 4, "discipline {name} lost requests");
        drop(c);
        handle.shutdown();
    }
}
