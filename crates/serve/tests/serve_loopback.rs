//! End-to-end loopback tests: a real server on 127.0.0.1, real TCP
//! clients, and the full stack in between — framing, dispatch, batching
//! executor, blocked kernels, telemetry.
//!
//! Determinism strategy: the executor's `pause` drain control lets tests
//! park the worker pool, build a known queue state (polling depths via the
//! `Stats` endpoint, which is served inline on connection threads), and
//! then release it — so queue-full and coalescing behaviour is asserted,
//! not hoped for.

use dls_core::LayoutScheduler;
use dls_serve::stats::parse_block_hist;
use dls_serve::{
    start, ModelRegistry, PredictRequest, Response, ScheduleRequest, ServeClient, ServedModel,
    ServerConfig, ServerHandle,
};
use dls_sparse::SparseVec;
use dls_svm::{KernelKind, SvmModel};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const DIM: usize = 16;

/// A small but non-trivial Gaussian-kernel model.
fn test_model() -> SvmModel {
    let svs: Vec<SparseVec> = (0..6)
        .map(|i| {
            SparseVec::new(
                DIM,
                vec![i, i + 5, i + 10],
                vec![1.0 + i as f64, -0.5 * i as f64 - 1.0, 0.25],
            )
        })
        .collect();
    let coefs = vec![1.0, -1.0, 0.5, -0.5, 0.75, -0.25];
    SvmModel::new(KernelKind::Gaussian { gamma: 0.125 }, svs, coefs, 0.375)
}

fn query(seed: usize) -> SparseVec {
    SparseVec::new(DIM, vec![seed % DIM], vec![1.0 + (seed % 7) as f64 * 0.5])
}

fn serve(config: ServerConfig) -> ServerHandle {
    let registry =
        ModelRegistry::new().with(ServedModel::new("m", test_model(), &LayoutScheduler::new()));
    start(registry, LayoutScheduler::new(), config).expect("bind loopback")
}

/// Sends one predict through the builder API (deadline 0 = server-default
/// class SLO).
fn predict(
    c: &mut ServeClient,
    model: &str,
    vectors: Vec<SparseVec>,
    deadline_ms: u32,
) -> Response {
    let mut b = PredictRequest::builder(model).vectors(vectors);
    if deadline_ms > 0 {
        b = b.deadline(Duration::from_millis(u64::from(deadline_ms)));
    }
    c.send(&b.build()).expect("predict")
}

fn schedule(
    c: &mut ServeClient,
    strategy: &str,
    rows: u64,
    cols: u64,
    entries: Vec<(u64, u64, f64)>,
) -> Response {
    c.send(&ScheduleRequest::builder(rows, cols).strategy(strategy).entries(entries).build())
        .expect("schedule")
}

/// Polls the predict queue depth via the wire Stats endpoint until it
/// reaches `want` (inline handling keeps this live while workers pause).
fn wait_for_depth(addr: SocketAddr, want: u64) {
    let mut stats = ServeClient::connect(addr).expect("connect stats");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let json = stats.stats().expect("stats");
        let doc = dls_core::json::parse(&json).expect("valid stats json");
        let depth = doc
            .get("queues")
            .and_then(|q| q.as_arr())
            .and_then(|qs| {
                qs.iter().find(|q| q.get("queue").and_then(|n| n.as_str()) == Some("predict:m"))
            })
            .and_then(|q| q.get("depth"))
            .and_then(|d| d.as_u64())
            .expect("queue depth");
        if depth >= want {
            return;
        }
        assert!(Instant::now() < deadline, "queue never reached depth {want}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn concurrent_singles_coalesce_and_match_per_vector_predict() {
    let handle = serve(ServerConfig::default());
    let addr = handle.local_addr();
    let model = test_model();

    // Park the workers, let 8 independent connections each queue one
    // single-vector predict, then release the pool: the drain must fuse
    // them into multi-vector blocks.
    const CLIENTS: usize = 8;
    handle.executor().pause(true);
    let clients: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = ServeClient::connect(addr).expect("connect");
                (i, predict(&mut c, "m", vec![query(i)], 0))
            })
        })
        .collect();
    wait_for_depth(addr, CLIENTS as u64);
    handle.executor().pause(false);

    for client in clients {
        let (i, resp) = client.join().expect("client thread");
        match resp {
            Response::Predictions(values) => {
                assert_eq!(values.len(), 1);
                // Bit-identical to evaluating that one vector alone.
                let want = model.decision_function(&query(i));
                assert_eq!(
                    values[0].to_bits(),
                    want.to_bits(),
                    "client {i}: {} vs {want}",
                    values[0]
                );
            }
            other => panic!("client {i}: unexpected response {other:?}"),
        }
    }

    // The telemetry must prove the fusion happened: blocks of B >= 2.
    let mut c = ServeClient::connect(addr).expect("connect");
    let hist = parse_block_hist(&c.stats().expect("stats")).expect("block hist");
    let multi: u64 = hist[1..].iter().sum();
    assert!(multi >= 1, "8 queued singles produced no multi-vector block: {hist:?}");

    drop(c);
    handle.shutdown();
}

#[test]
fn full_queue_refuses_with_busy_immediately() {
    let config = ServerConfig {
        executor: dls_serve::ExecutorConfig { queue_capacity: 2, ..Default::default() },
        ..Default::default()
    };
    let handle = serve(config);
    let addr = handle.local_addr();

    handle.executor().pause(true);
    // Two clients fill the queue to capacity and block awaiting replies.
    let blocked: Vec<_> = (0..2)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = ServeClient::connect(addr).expect("connect");
                predict(&mut c, "m", vec![query(i)], 0)
            })
        })
        .collect();
    wait_for_depth(addr, 2);

    // The third client must get Busy back immediately — not a hang, not a
    // queued wait.
    let mut c = ServeClient::connect(addr).expect("connect");
    let started = Instant::now();
    let resp = predict(&mut c, "m", vec![query(9)], 0);
    assert_eq!(resp, Response::Busy);
    assert!(started.elapsed() < Duration::from_secs(2), "Busy reply was not immediate");

    // Releasing the pool completes the two queued requests normally.
    handle.executor().pause(false);
    for client in blocked {
        assert!(matches!(client.join().expect("join"), Response::Predictions(_)));
    }
    drop(c);
    handle.shutdown();
}

#[test]
fn requests_queued_past_their_deadline_time_out() {
    let handle = serve(ServerConfig::default());
    let addr = handle.local_addr();

    handle.executor().pause(true);
    let waiter = std::thread::spawn(move || {
        let mut c = ServeClient::connect(addr).expect("connect");
        // 10 ms clears the admission projection (gather + one tiny sweep)
        // but lapses while the pool stays parked below.
        predict(&mut c, "m", vec![query(0)], 10)
    });
    wait_for_depth(addr, 1);
    std::thread::sleep(Duration::from_millis(30)); // sail past the 10 ms deadline
    handle.executor().pause(false);
    assert_eq!(waiter.join().expect("join"), Response::TimedOut);

    // The miss is on the interactive class's SLO ledger.
    let mut c = ServeClient::connect(addr).expect("connect");
    let doc = dls_core::json::parse(&c.stats().expect("stats")).expect("valid stats json");
    let interactive = doc.get("classes").and_then(|c| c.get("interactive")).expect("class stats");
    assert_eq!(interactive.get("slo_violations").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(interactive.get("slo_violation_rate").and_then(|v| v.as_f64()), Some(1.0));
    drop(c);
    handle.shutdown();
}

#[test]
fn schedule_and_errors_over_the_wire() {
    let handle = serve(ServerConfig::default());
    let addr = handle.local_addr();
    let mut c = ServeClient::connect(addr).expect("connect");

    // A fixed-format strategy is honoured end to end.
    let entries: Vec<(u64, u64, f64)> = (0..8).map(|i| (i % 4, i % 6, 1.0 + i as f64)).collect();
    match schedule(&mut c, "csr", 4, 6, entries.clone()) {
        Response::Scheduled { format, .. } => assert_eq!(format, "CSR"),
        other => panic!("unexpected response {other:?}"),
    }
    // The default scheduler returns a scored decision.
    match schedule(&mut c, "", 4, 6, entries) {
        Response::Scheduled { format, scores, .. } => {
            assert!(!format.is_empty());
            assert!(!scores.is_empty());
        }
        other => panic!("unexpected response {other:?}"),
    }
    // Malformed submissions come back as typed errors, not dropped
    // connections.
    assert!(matches!(schedule(&mut c, "no-such-strategy", 2, 2, vec![]), Response::Error(_)));
    assert!(matches!(schedule(&mut c, "", 2, 2, vec![(5, 0, 1.0)]), Response::Error(_)));
    assert!(matches!(predict(&mut c, "missing-model", vec![query(0)], 0), Response::Error(_)));
    assert!(matches!(predict(&mut c, "m", vec![SparseVec::zeros(DIM + 1)], 0), Response::Error(_)));

    // The same connection still serves good requests afterwards.
    assert!(matches!(predict(&mut c, "m", vec![query(1)], 0), Response::Predictions(_)));
    drop(c);
    handle.shutdown();
}

/// The pre-redesign client methods still work (deprecated shims over the
/// builder API) — existing callers keep compiling and serving.
#[test]
#[allow(deprecated)]
fn deprecated_client_shims_still_serve() {
    let handle = serve(ServerConfig::default());
    let mut c = ServeClient::connect(handle.local_addr()).expect("connect");
    assert!(matches!(
        c.predict("m", vec![query(2)], 0).expect("predict"),
        Response::Predictions(_)
    ));
    let entries: Vec<(u64, u64, f64)> = (0..4).map(|i| (i, i, 1.0)).collect();
    assert!(matches!(
        c.schedule("csr", 4, 4, entries).expect("schedule"),
        Response::Scheduled { .. }
    ));
    drop(c);
    handle.shutdown();
}

#[test]
fn shutdown_frame_drains_gracefully() {
    let handle = serve(ServerConfig::default());
    let addr = handle.local_addr();

    let mut c = ServeClient::connect(addr).expect("connect");
    assert!(matches!(predict(&mut c, "m", vec![query(3)], 0), Response::Predictions(_)));
    assert_eq!(c.shutdown().expect("shutdown"), Response::ShuttingDown);
    // Requests after the shutdown ack are refused, not dropped.
    assert_eq!(predict(&mut c, "m", vec![query(4)], 0), Response::ShuttingDown);
    drop(c);

    assert!(handle.is_shutting_down());
    handle.shutdown(); // performs the drain; idempotent with join()

    // The acceptor is gone: fresh connections cannot reach the service.
    let gone = ServeClient::connect(addr)
        .and_then(|mut c| c.send(&PredictRequest::builder("m").vector(query(5)).build()));
    assert!(gone.is_err(), "server still serving after drain");
}
