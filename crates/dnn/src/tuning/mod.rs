//! Hyperparameter auto-tuning (paper §IV-C/D/E).
//!
//! The paper tunes, in order: batch size `B` (space {64, 100, 128, 256,
//! 512, 1024, 2048, 4096, 8192}), then learning rate η ({0.001 … 0.016}),
//! then momentum µ ({0.90 … 0.99}) — each time keeping the previous
//! winners. [`AutoTuner`] reproduces that greedy three-stage pipeline;
//! the individual sweeps live in [`batch`], [`lr`] and [`momentum`].

pub mod batch;
pub mod lr;
pub mod momentum;

use crate::data::Dataset;
use crate::net::Network;
use crate::optim::SgdConfig;
use crate::train::{TrainOutcome, Trainer, TrainerConfig};

/// One evaluated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningPoint {
    /// Batch size used.
    pub batch_size: usize,
    /// Learning rate used.
    pub learning_rate: f32,
    /// Momentum used.
    pub momentum: f32,
    /// What happened.
    pub outcome: TrainOutcome,
}

impl TuningPoint {
    /// Abstract cost of this run: iterations × batch = samples processed.
    /// Runs that missed the target are ranked after all runs that hit it.
    pub fn samples_processed(&self) -> u64 {
        (self.outcome.iterations * self.batch_size) as u64
    }
}

/// Ranks points: reaching the target dominates; among reachers, fewer
/// processed samples wins; among non-reachers, higher accuracy wins.
pub fn best_point(points: &[TuningPoint]) -> Option<&TuningPoint> {
    points.iter().min_by(|a, b| match (a.outcome.reached, b.outcome.reached) {
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        (true, true) => a.samples_processed().cmp(&b.samples_processed()),
        (false, false) => b
            .outcome
            .final_accuracy
            .partial_cmp(&a.outcome.final_accuracy)
            .expect("finite accuracy"),
    })
}

/// Runs one configuration from a fresh, identically-initialised network.
pub fn evaluate_config(
    dataset: &Dataset,
    topology: &[usize],
    net_seed: u64,
    config: &TrainerConfig,
) -> TuningPoint {
    let mut net = Network::mlp(topology, net_seed);
    let outcome = Trainer::run(&mut net, dataset, config);
    TuningPoint {
        batch_size: config.batch_size,
        learning_rate: config.sgd.learning_rate,
        momentum: config.sgd.momentum,
        outcome,
    }
}

/// The paper's greedy three-stage pipeline: tune B, then η given B, then µ
/// given (B, η) — producing the DGX1 → DGX2 → DGX3 progression of
/// Figures 5–6.
#[derive(Debug, Clone)]
pub struct AutoTuner {
    /// Hidden-layer widths (input/output dims come from the dataset).
    pub hidden: Vec<usize>,
    /// Network init seed (shared across candidates for fairness).
    pub net_seed: u64,
    /// Base trainer config; its batch/η/µ fields are overwritten per stage.
    pub base: TrainerConfig,
}

/// The three stage winners plus all evaluated points.
#[derive(Debug, Clone)]
pub struct AutoTuneResult {
    /// Winner after the batch stage (the paper's "DGX1").
    pub after_batch: TuningPoint,
    /// Winner after the learning-rate stage ("DGX2").
    pub after_lr: TuningPoint,
    /// Winner after the momentum stage ("DGX3").
    pub after_momentum: TuningPoint,
    /// Every point evaluated in stage order.
    pub all_points: Vec<TuningPoint>,
}

impl AutoTuner {
    /// Runs the full pipeline over the given candidate spaces.
    pub fn run(
        &self,
        dataset: &Dataset,
        batches: &[usize],
        rates: &[f32],
        momenta: &[f32],
    ) -> AutoTuneResult {
        let topology = self.topology(dataset);
        let mut all = Vec::new();

        let batch_pts = batch::sweep(dataset, &topology, self.net_seed, &self.base, batches);
        let best_b = best_point(&batch_pts).expect("non-empty batch space").clone();
        all.extend(batch_pts);

        let base_lr = TrainerConfig { batch_size: best_b.batch_size, ..self.base };
        let lr_pts = lr::sweep(dataset, &topology, self.net_seed, &base_lr, rates);
        let best_lr = best_point(&lr_pts).expect("non-empty rate space").clone();
        all.extend(lr_pts);

        let base_mu = TrainerConfig {
            batch_size: best_b.batch_size,
            sgd: SgdConfig {
                learning_rate: best_lr.learning_rate,
                momentum: self.base.sgd.momentum,
                ..self.base.sgd
            },
            ..self.base
        };
        let mu_pts = momentum::sweep(dataset, &topology, self.net_seed, &base_mu, momenta);
        let best_mu = best_point(&mu_pts).expect("non-empty momentum space").clone();
        all.extend(mu_pts);

        AutoTuneResult {
            after_batch: best_b,
            after_lr: best_lr,
            after_momentum: best_mu,
            all_points: all,
        }
    }

    fn topology(&self, dataset: &Dataset) -> Vec<usize> {
        let mut t = vec![dataset.dim()];
        t.extend_from_slice(&self.hidden);
        t.push(dataset.classes());
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CifarLikeConfig;

    fn tiny_dataset() -> Dataset {
        Dataset::cifar_like(CifarLikeConfig {
            classes: 3,
            side: 4,
            train: 90,
            test: 45,
            noise: 0.4,
            ..Default::default()
        })
    }

    #[test]
    fn best_point_prefers_reached_then_cheapest() {
        let mk = |reached: bool, iters: usize, b: usize, acc: f64| TuningPoint {
            batch_size: b,
            learning_rate: 0.01,
            momentum: 0.9,
            outcome: TrainOutcome {
                reached,
                iterations: iters,
                epochs: 1,
                final_accuracy: acc,
                history: vec![],
            },
        };
        let pts = vec![mk(false, 10, 10, 0.9), mk(true, 100, 10, 0.8), mk(true, 50, 10, 0.8)];
        let best = best_point(&pts).unwrap();
        assert!(best.outcome.reached);
        assert_eq!(best.outcome.iterations, 50);
        // Among non-reachers, higher accuracy wins.
        let pts = vec![mk(false, 10, 10, 0.5), mk(false, 10, 10, 0.7)];
        assert_eq!(best_point(&pts).unwrap().outcome.final_accuracy, 0.7);
    }

    #[test]
    fn pipeline_improves_or_matches_at_each_stage() {
        let ds = tiny_dataset();
        let tuner = AutoTuner {
            hidden: vec![16],
            net_seed: 5,
            base: TrainerConfig { target_accuracy: 0.85, max_epochs: 30, ..Default::default() },
        };
        let result = tuner.run(&ds, &[10, 30, 90], &[0.005, 0.02, 0.08], &[0.0, 0.9]);
        assert_eq!(result.all_points.len(), 3 + 3 + 2);
        // Later stages must not be worse than earlier ones under the
        // samples-processed metric (greedy keeps the incumbent settings in
        // the candidate sets implicitly by re-running them).
        if result.after_batch.outcome.reached && result.after_momentum.outcome.reached {
            assert!(
                result.after_momentum.samples_processed()
                    <= result.after_batch.samples_processed() * 2,
                "momentum stage regressed badly"
            );
        }
        // The winner reflects its stage's parameters.
        assert!([10, 30, 90].contains(&result.after_lr.batch_size));
        assert!([0.0, 0.9].contains(&result.after_momentum.momentum));
    }
}
