//! Momentum sweep (paper §IV-E).
//!
//! "The momentum technique often can help the algorithm to get out of the
//! local minimum … µ should be set close to 1 because we want the algorithm
//! to have a good short-term memory." The paper's space is {0.90, 0.91, …,
//! 0.99}; tuning µ to 0.95 gives an additional 1.7×.

use crate::data::Dataset;
use crate::optim::SgdConfig;
use crate::train::TrainerConfig;
use crate::tuning::{evaluate_config, TuningPoint};

/// The paper's momentum tuning space: {0.90, 0.91, …, 0.99}.
pub fn paper_momentum_space() -> Vec<f32> {
    (0..10).map(|k| 0.90 + k as f32 * 0.01).collect()
}

/// Trains one fresh network per candidate momentum.
pub fn sweep(
    dataset: &Dataset,
    topology: &[usize],
    net_seed: u64,
    base: &TrainerConfig,
    momenta: &[f32],
) -> Vec<TuningPoint> {
    momenta
        .iter()
        .map(|&mu| {
            let config = TrainerConfig { sgd: SgdConfig { momentum: mu, ..base.sgd }, ..*base };
            evaluate_config(dataset, topology, net_seed, &config)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CifarLikeConfig;

    fn dataset() -> Dataset {
        Dataset::cifar_like(CifarLikeConfig {
            classes: 3,
            side: 4,
            train: 120,
            test: 60,
            noise: 0.5,
            ..Default::default()
        })
    }

    #[test]
    fn paper_space_is_ten_momenta() {
        let s = paper_momentum_space();
        assert_eq!(s.len(), 10);
        assert!((s[0] - 0.90).abs() < 1e-6);
        assert!((s[9] - 0.99).abs() < 1e-6);
    }

    #[test]
    fn momentum_accelerates_convergence_at_small_lr() {
        // At a deliberately small learning rate, momentum supplies the
        // missing step length: µ = 0.9 must converge in no more epochs
        // than µ = 0 (the effective step is 10x).
        let ds = dataset();
        let base = TrainerConfig {
            batch_size: 24,
            sgd: SgdConfig {
                learning_rate: 0.004,
                momentum: 0.0,
                weight_decay: 0.0,
                nesterov: false,
            },
            target_accuracy: 0.85,
            max_epochs: 80,
            ..Default::default()
        };
        let pts = sweep(&ds, &[ds.dim(), 16, ds.classes()], 4, &base, &[0.0, 0.9]);
        let (plain, with_mu) = (&pts[0].outcome, &pts[1].outcome);
        assert!(with_mu.reached, "momentum run must converge");
        if plain.reached {
            assert!(
                with_mu.epochs <= plain.epochs,
                "momentum epochs {} vs plain {}",
                with_mu.epochs,
                plain.epochs
            );
        }
    }

    #[test]
    fn sweep_varies_only_momentum() {
        let ds = dataset();
        let base = TrainerConfig {
            batch_size: 40,
            sgd: SgdConfig {
                learning_rate: 0.006,
                momentum: 0.9,
                weight_decay: 0.0,
                nesterov: false,
            },
            target_accuracy: 2.0,
            max_epochs: 1,
            ..Default::default()
        };
        let pts = sweep(&ds, &[ds.dim(), ds.classes()], 1, &base, &[0.90, 0.95, 0.99]);
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert_eq!(p.batch_size, 40);
            assert_eq!(p.learning_rate, 0.006);
        }
        assert_eq!(pts[1].momentum, 0.95);
    }
}
