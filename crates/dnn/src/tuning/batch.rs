//! Batch-size sweep (paper §IV-C).
//!
//! "There is a tradeoff for tuning the batch size. … a larger batch size
//! means the BLAS functions can process a larger matrix … \[but\] may lead to
//! a sharp optimization problem, which requires more epochs to get the
//! target accuracy. … the computational cost per iteration increases at the
//! speed of Θ(B) while the number of iterations decreases at a speed lower
//! than Θ(B)."

use crate::data::Dataset;
use crate::train::TrainerConfig;
use crate::tuning::{evaluate_config, TuningPoint};

/// The paper's batch-size tuning space for the DGX station.
pub const PAPER_BATCH_SPACE: [usize; 9] = [64, 100, 128, 256, 512, 1024, 2048, 4096, 8192];

/// Trains one fresh network per candidate batch size.
pub fn sweep(
    dataset: &Dataset,
    topology: &[usize],
    net_seed: u64,
    base: &TrainerConfig,
    batches: &[usize],
) -> Vec<TuningPoint> {
    batches
        .iter()
        .map(|&b| {
            let config = TrainerConfig { batch_size: b.min(dataset.n_train()), ..*base };
            evaluate_config(dataset, topology, net_seed, &config)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CifarLikeConfig;
    use crate::optim::SgdConfig;

    fn dataset() -> Dataset {
        Dataset::cifar_like(CifarLikeConfig {
            classes: 3,
            side: 4,
            train: 120,
            test: 60,
            noise: 0.5,
            ..Default::default()
        })
    }

    #[test]
    fn larger_batches_run_fewer_iterations_per_epoch() {
        let ds = dataset();
        let base = TrainerConfig {
            sgd: SgdConfig {
                learning_rate: 0.02,
                momentum: 0.9,
                weight_decay: 0.0,
                nesterov: false,
            },
            target_accuracy: 2.0, // run exactly max_epochs
            max_epochs: 2,
            ..Default::default()
        };
        let pts = sweep(&ds, &[ds.dim(), 8, ds.classes()], 1, &base, &[12, 60, 120]);
        assert_eq!(pts.len(), 3);
        // 2 epochs: 120/12=10 iters/epoch, /60=2, /120=1.
        assert_eq!(pts[0].outcome.iterations, 20);
        assert_eq!(pts[1].outcome.iterations, 4);
        assert_eq!(pts[2].outcome.iterations, 2);
    }

    #[test]
    fn small_batches_converge_in_fewer_epochs() {
        // The core §IV-C trade-off on real SGD runs: at a fixed learning
        // rate, B = n (full batch) needs at least as many epochs as a small
        // batch to hit the same accuracy.
        let ds = dataset();
        let base = TrainerConfig {
            sgd: SgdConfig {
                learning_rate: 0.03,
                momentum: 0.9,
                weight_decay: 0.0,
                nesterov: false,
            },
            target_accuracy: 0.9,
            max_epochs: 60,
            ..Default::default()
        };
        let pts = sweep(&ds, &[ds.dim(), 16, ds.classes()], 2, &base, &[12, 120]);
        let small = &pts[0].outcome;
        let full = &pts[1].outcome;
        assert!(small.reached, "small batch should converge");
        if full.reached {
            assert!(
                small.epochs <= full.epochs,
                "small-batch epochs {} vs full-batch {}",
                small.epochs,
                full.epochs
            );
        }
    }

    #[test]
    fn batch_is_capped_at_dataset_size() {
        let ds = dataset();
        let base = TrainerConfig { target_accuracy: 2.0, max_epochs: 1, ..Default::default() };
        let pts = sweep(&ds, &[ds.dim(), ds.classes()], 1, &base, &[100_000]);
        assert_eq!(pts[0].outcome.iterations, 1, "one full-batch iteration");
    }
}
