//! Learning-rate sweep (paper §IV-D).
//!
//! "A large learning rate may help to speed up the algorithm to converge …
//! However, a large learning rate may easily make the algorithm miss the
//! global minimum. Different batch sizes generally have different optimal
//! learning rates." The paper finds η = 0.003 optimal for B = 512 and gains
//! 2.6× from this stage.

use crate::data::Dataset;
use crate::optim::SgdConfig;
use crate::train::TrainerConfig;
use crate::tuning::{evaluate_config, TuningPoint};

/// The paper's learning-rate tuning space: {0.001, 0.002, …, 0.016}.
pub fn paper_lr_space() -> Vec<f32> {
    (1..=16).map(|k| k as f32 * 0.001).collect()
}

/// Trains one fresh network per candidate learning rate.
pub fn sweep(
    dataset: &Dataset,
    topology: &[usize],
    net_seed: u64,
    base: &TrainerConfig,
    rates: &[f32],
) -> Vec<TuningPoint> {
    rates
        .iter()
        .map(|&lr| {
            let config =
                TrainerConfig { sgd: SgdConfig { learning_rate: lr, ..base.sgd }, ..*base };
            evaluate_config(dataset, topology, net_seed, &config)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CifarLikeConfig;

    fn dataset() -> Dataset {
        Dataset::cifar_like(CifarLikeConfig {
            classes: 3,
            side: 4,
            train: 120,
            test: 60,
            noise: 0.5,
            ..Default::default()
        })
    }

    #[test]
    fn paper_space_is_sixteen_rates() {
        let s = paper_lr_space();
        assert_eq!(s.len(), 16);
        assert!((s[0] - 0.001).abs() < 1e-9);
        assert!((s[15] - 0.016).abs() < 1e-9);
    }

    #[test]
    fn higher_lr_converges_faster_within_stable_region() {
        let ds = dataset();
        let base = TrainerConfig {
            batch_size: 24,
            target_accuracy: 0.85,
            max_epochs: 80,
            ..Default::default()
        };
        let pts = sweep(&ds, &[ds.dim(), 16, ds.classes()], 3, &base, &[0.002, 0.02]);
        let (slow, fast) = (&pts[0].outcome, &pts[1].outcome);
        assert!(fast.reached, "0.02 should converge");
        if slow.reached {
            assert!(
                fast.epochs <= slow.epochs,
                "higher stable lr should need no more epochs: {} vs {}",
                fast.epochs,
                slow.epochs
            );
        } else {
            // The tiny rate ran out of epochs entirely — an even stronger
            // form of the same ordering.
            assert!(fast.epochs < base.max_epochs);
        }
    }

    #[test]
    fn sweep_preserves_batch_and_momentum() {
        let ds = dataset();
        let base = TrainerConfig {
            batch_size: 30,
            sgd: SgdConfig {
                learning_rate: 0.001,
                momentum: 0.95,
                weight_decay: 0.0,
                nesterov: false,
            },
            target_accuracy: 2.0,
            max_epochs: 1,
            ..Default::default()
        };
        let pts = sweep(&ds, &[ds.dim(), ds.classes()], 1, &base, &[0.004, 0.008]);
        for p in &pts {
            assert_eq!(p.batch_size, 30);
            assert_eq!(p.momentum, 0.95);
        }
        assert_eq!(pts[0].learning_rate, 0.004);
        assert_eq!(pts[1].learning_rate, 0.008);
    }
}
