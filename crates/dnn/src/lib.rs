#![warn(missing_docs)]

//! # dls-dnn
//!
//! A from-scratch deep-learning substrate for the paper's second half
//! (§IV): minibatch SGD with momentum (equations 8–9), batch-size /
//! learning-rate / momentum auto-tuning, and the data-parallel
//! divide-and-conquer gradient averaging of §IV-B.
//!
//! The paper trains Caffe's `cifar10_full` model on CIFAR-10; this crate
//! provides a procedurally generated CIFAR-like dataset ([`data`]) and a
//! small network over it, so the *tuning dynamics* (how B, η and µ trade
//! iteration cost against convergence rate) are measured on real SGD runs
//! rather than hard-coded.

pub mod data;
pub mod init;
pub mod layers;
pub mod loss;
pub mod net;
pub mod optim;
pub mod parallel;
pub mod schedule;
pub mod tensor;
pub mod train;
pub mod tuning;

pub use data::{CifarLikeConfig, Dataset};
pub use net::Network;
pub use optim::SgdConfig;
pub use schedule::LrSchedule;
pub use tensor::Tensor;
pub use train::{TrainOutcome, Trainer, TrainerConfig};
