//! Weight initialisation.

use crate::tensor::{Elem, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Xavier/Glorot uniform initialisation: `U(−√(6/(fan_in+fan_out)), +…)`.
pub fn xavier(shape: &[usize], fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let bound = (6.0 / (fan_in + fan_out) as f64).sqrt() as Elem;
    let data = (0..shape.iter().product::<usize>())
        .map(|_| (rng.gen::<Elem>() * 2.0 - 1.0) * bound)
        .collect();
    Tensor::from_vec(shape, data)
}

/// He/Kaiming uniform initialisation for ReLU stacks: `U(±√(6/fan_in))`.
pub fn he(shape: &[usize], fan_in: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let bound = (6.0 / fan_in as f64).sqrt() as Elem;
    let data = (0..shape.iter().product::<usize>())
        .map(|_| (rng.gen::<Elem>() * 2.0 - 1.0) * bound)
        .collect();
    Tensor::from_vec(shape, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_values_within_bound() {
        let t = xavier(&[10, 10], 10, 10, 1);
        let bound = (6.0f64 / 20.0).sqrt() as Elem;
        assert!(t.data().iter().all(|v| v.abs() <= bound));
        // Not all zero.
        assert!(t.norm_sq() > 0.0);
    }

    #[test]
    fn he_values_within_bound() {
        let t = he(&[8, 4], 8, 2);
        let bound = (6.0f64 / 8.0).sqrt() as Elem;
        assert!(t.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(xavier(&[4, 4], 4, 4, 7), xavier(&[4, 4], 4, 4, 7));
        assert_ne!(xavier(&[4, 4], 4, 4, 7), xavier(&[4, 4], 4, 4, 8));
    }
}
