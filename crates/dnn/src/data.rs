//! Procedurally generated CIFAR-like dataset.
//!
//! CIFAR-10 itself (60,000 32×32×3 images, 170 MB) is not redistributable
//! inside this repository, so this module synthesises a drop-in stand-in:
//! `k` classes of small RGB images, each class a distinct low-frequency
//! pattern plus Gaussian pixel noise. The noise level controls how many
//! epochs SGD needs — which is the property the paper's batch/learning-rate/
//! momentum tuning experiments exercise.

use crate::tensor::{Elem, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CifarLikeConfig {
    /// Number of classes (CIFAR-10 has 10).
    pub classes: usize,
    /// Image side length (CIFAR is 32; the default twin uses 8 for speed).
    pub side: usize,
    /// Colour channels.
    pub channels: usize,
    /// Training samples.
    pub train: usize,
    /// Held-out test samples.
    pub test: usize,
    /// Standard deviation of the added pixel noise; higher = harder = more
    /// epochs to the target accuracy.
    pub noise: Elem,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CifarLikeConfig {
    fn default() -> Self {
        Self { classes: 10, side: 8, channels: 3, train: 1_500, test: 400, noise: 1.4, seed: 1 }
    }
}

/// The generated dataset, flat `[n, dim]` plus integer labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    x_train: Tensor,
    y_train: Vec<usize>,
    x_test: Tensor,
    y_test: Vec<usize>,
    config: CifarLikeConfig,
}

impl Dataset {
    /// Generates the dataset deterministically from its config.
    pub fn cifar_like(config: CifarLikeConfig) -> Self {
        assert!(config.classes >= 2, "need at least two classes");
        assert!(config.train >= config.classes && config.test >= config.classes);
        let dim = config.channels * config.side * config.side;
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Class prototypes: smooth class-specific plaid patterns per channel.
        let prototypes: Vec<Vec<Elem>> = (0..config.classes)
            .map(|c| {
                let fx = 1.0 + (c % 4) as Elem;
                let fy = 1.0 + (c / 4) as Elem;
                let phase = rng.gen::<Elem>() * std::f32::consts::TAU;
                let mut p = vec![0.0; dim];
                for ch in 0..config.channels {
                    let chw = ch as Elem * 0.7;
                    for y in 0..config.side {
                        for x in 0..config.side {
                            let u = x as Elem / config.side as Elem;
                            let v = y as Elem / config.side as Elem;
                            p[ch * config.side * config.side + y * config.side + x] =
                                (std::f32::consts::TAU * (fx * u + chw) + phase).sin()
                                    * (std::f32::consts::TAU * (fy * v) + phase).cos();
                        }
                    }
                }
                p
            })
            .collect();

        let mut make_split = |n: usize| -> (Tensor, Vec<usize>) {
            let mut x = Tensor::zeros(&[n, dim]);
            let mut y = Vec::with_capacity(n);
            for i in 0..n {
                let class = i % config.classes;
                y.push(class);
                let row = &mut x.data_mut()[i * dim..(i + 1) * dim];
                for (j, r) in row.iter_mut().enumerate() {
                    *r = prototypes[class][j] + gaussian(&mut rng) * config.noise;
                }
            }
            (x, y)
        };
        let (x_train, y_train) = make_split(config.train);
        let (x_test, y_test) = make_split(config.test);
        Self { x_train, y_train, x_test, y_test, config }
    }

    /// Flattened feature dimension.
    pub fn dim(&self) -> usize {
        self.config.channels * self.config.side * self.config.side
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.config.classes
    }

    /// The generation config.
    pub fn config(&self) -> &CifarLikeConfig {
        &self.config
    }

    /// Number of training samples.
    pub fn n_train(&self) -> usize {
        self.y_train.len()
    }

    /// Number of test samples.
    pub fn n_test(&self) -> usize {
        self.y_test.len()
    }

    /// Training features `[n_train, dim]`.
    pub fn x_train(&self) -> &Tensor {
        &self.x_train
    }

    /// Training labels.
    pub fn y_train(&self) -> &[usize] {
        &self.y_train
    }

    /// Test features `[n_test, dim]`.
    pub fn x_test(&self) -> &Tensor {
        &self.x_test
    }

    /// Test labels.
    pub fn y_test(&self) -> &[usize] {
        &self.y_test
    }

    /// Gathers the training rows at `indices` into a `[b, dim]` batch.
    pub fn train_batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let dim = self.dim();
        let mut x = Tensor::zeros(&[indices.len(), dim]);
        let mut y = Vec::with_capacity(indices.len());
        for (k, &i) in indices.iter().enumerate() {
            x.data_mut()[k * dim..(k + 1) * dim]
                .copy_from_slice(&self.x_train.data()[i * dim..(i + 1) * dim]);
            y.push(self.y_train[i]);
        }
        (x, y)
    }

    /// Training batch reshaped to NCHW for convolutional networks.
    pub fn train_batch_images(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let (x, y) = self.train_batch(indices);
        let c = self.config;
        (x.reshape(&[indices.len(), c.channels, c.side, c.side]), y)
    }
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> Elem {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as Elem
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CifarLikeConfig {
        CifarLikeConfig {
            classes: 4,
            side: 4,
            train: 40,
            test: 16,
            noise: 0.5,
            ..Default::default()
        }
    }

    #[test]
    fn shapes_and_label_coverage() {
        let ds = Dataset::cifar_like(tiny());
        assert_eq!(ds.dim(), 3 * 4 * 4);
        assert_eq!(ds.x_train().shape(), &[40, 48]);
        assert_eq!(ds.n_test(), 16);
        for c in 0..4 {
            assert!(ds.y_train().contains(&c), "class {c} in train");
            assert!(ds.y_test().contains(&c), "class {c} in test");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Dataset::cifar_like(tiny());
        let b = Dataset::cifar_like(tiny());
        assert_eq!(a.x_train().data(), b.x_train().data());
        let c = Dataset::cifar_like(CifarLikeConfig { seed: 2, ..tiny() });
        assert_ne!(a.x_train().data(), c.x_train().data());
    }

    #[test]
    fn classes_are_separable_by_prototype_distance() {
        // With low noise, samples must be closer (on average) to their own
        // class's other samples than to a different class's.
        let ds = Dataset::cifar_like(CifarLikeConfig { noise: 0.1, ..tiny() });
        let dim = ds.dim();
        let row = |i: usize| &ds.x_train().data()[i * dim..(i + 1) * dim];
        let dist = |a: &[Elem], b: &[Elem]| -> f64 {
            a.iter().zip(b).map(|(x, y)| ((x - y) as f64).powi(2)).sum()
        };
        // Samples 0 and 4 share class 0; sample 1 is class 1.
        assert!(dist(row(0), row(4)) < dist(row(0), row(1)));
    }

    #[test]
    fn batch_gather_matches_rows() {
        let ds = Dataset::cifar_like(tiny());
        let (x, y) = ds.train_batch(&[3, 0]);
        assert_eq!(x.shape(), &[2, 48]);
        assert_eq!(y, vec![ds.y_train()[3], ds.y_train()[0]]);
        let dim = ds.dim();
        assert_eq!(&x.data()[..dim], &ds.x_train().data()[3 * dim..4 * dim]);
    }

    #[test]
    fn image_batch_is_nchw() {
        let ds = Dataset::cifar_like(tiny());
        let (x, _) = ds.train_batch_images(&[0, 1, 2]);
        assert_eq!(x.shape(), &[3, 3, 4, 4]);
    }

    #[test]
    fn noise_increases_sample_spread() {
        let quiet = Dataset::cifar_like(CifarLikeConfig { noise: 0.1, ..tiny() });
        let loud = Dataset::cifar_like(CifarLikeConfig { noise: 2.0, ..tiny() });
        // Same class samples (0 and 4): spread grows with noise.
        let dim = quiet.dim();
        let d = |ds: &Dataset| {
            let a = &ds.x_train().data()[0..dim];
            let b = &ds.x_train().data()[4 * dim..5 * dim];
            a.iter().zip(b).map(|(x, y)| ((x - y) as f64).powi(2)).sum::<f64>()
        };
        assert!(d(&loud) > d(&quiet));
    }
}
