//! Minibatch trainer: run SGD until a target test accuracy (the paper's
//! figure of merit is *time to 0.8 CIFAR-10 accuracy*).

use crate::data::Dataset;
use crate::loss::{classification_accuracy, softmax_cross_entropy};
use crate::net::Network;
use crate::optim::{Sgd, SgdConfig};
use crate::parallel::WorkerPool;
use crate::schedule::LrSchedule;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Minibatch size `B`.
    pub batch_size: usize,
    /// Optimiser settings (η, µ).
    pub sgd: SgdConfig,
    /// Stop once test accuracy reaches this.
    pub target_accuracy: f64,
    /// Hard cap on epochs.
    pub max_epochs: usize,
    /// Learning-rate schedule applied at each epoch boundary.
    pub schedule: LrSchedule,
    /// Data-parallel workers per batch (§IV-B divide-and-conquer): each
    /// batch is sharded across `workers` weight replicas and the gradients
    /// sum-reduced, exactly like the paper's multi-GPU DGX strategy.
    /// 1 = serial.
    pub workers: usize,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainerConfig {
    /// The paper's untuned baseline: `B = 100`, η = 0.001, µ = 0.9,
    /// target accuracy 0.8.
    fn default() -> Self {
        Self {
            batch_size: 100,
            sgd: SgdConfig::default(),
            target_accuracy: 0.8,
            max_epochs: 200,
            schedule: LrSchedule::Constant,
            workers: 1,
            seed: 7,
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainOutcome {
    /// Whether the accuracy target was reached.
    pub reached: bool,
    /// SGD iterations (weight updates) executed.
    pub iterations: usize,
    /// Epochs completed (fractional if stopping mid-epoch is disabled this
    /// is integral; evaluation happens at epoch boundaries).
    pub epochs: usize,
    /// Test accuracy at the end of the run.
    pub final_accuracy: f64,
    /// `(iteration, test accuracy)` at each epoch boundary.
    pub history: Vec<(usize, f64)>,
}

/// Runs the minibatch SGD loop on flat `[n, dim]` inputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Trainer;

impl Trainer {
    /// Trains `net` on `dataset` under `config`, mutating the network.
    ///
    /// With `config.workers > 1` the caller must use
    /// [`Trainer::run_parallel`] (the worker pool needs a topology
    /// factory); this serial entry point asserts `workers == 1`.
    pub fn run(net: &mut Network, dataset: &Dataset, config: &TrainerConfig) -> TrainOutcome {
        assert_eq!(config.workers, 1, "use Trainer::run_parallel for workers > 1");
        assert!(config.batch_size >= 1, "batch size must be positive");
        assert!(config.max_epochs >= 1, "need at least one epoch");
        let mut opt = Sgd::new(config.sgd, net);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = dataset.n_train();
        let mut order: Vec<usize> = (0..n).collect();

        let mut iterations = 0usize;
        let mut history = Vec::new();
        let mut reached = false;
        let mut final_accuracy = 0.0;
        let mut epochs = 0usize;

        for epoch in 0..config.max_epochs {
            opt.set_learning_rate(config.schedule.rate_at(config.sgd.learning_rate, epoch));
            net.set_training(true);
            order.shuffle(&mut rng);
            for chunk in order.chunks(config.batch_size) {
                let (x, y) = dataset.train_batch(chunk);
                let logits = net.forward(&x);
                let (_, grad) = softmax_cross_entropy(&logits, &y);
                net.zero_grads();
                net.backward(&grad);
                opt.step(net);
                iterations += 1;
            }
            epochs += 1;
            final_accuracy = evaluate(net, dataset);
            history.push((iterations, final_accuracy));
            if final_accuracy >= config.target_accuracy {
                reached = true;
                break;
            }
        }
        TrainOutcome { reached, iterations, epochs, final_accuracy, history }
    }

    /// Data-parallel variant of [`Trainer::run`] (§IV-B): each batch's
    /// gradient is computed by `config.workers` replicas over batch shards
    /// and sum-reduced before the SGD step. The `factory` must build the
    /// same topology as `net` (weights are overwritten each step).
    ///
    /// With the same seed this produces the same sequence of updates as
    /// the serial loop up to floating-point summation order.
    pub fn run_parallel(
        net: &mut Network,
        factory: impl Fn() -> Network,
        dataset: &Dataset,
        config: &TrainerConfig,
    ) -> TrainOutcome {
        assert!(config.workers >= 1, "need at least one worker");
        assert!(config.batch_size >= 1, "batch size must be positive");
        assert!(config.max_epochs >= 1, "need at least one epoch");
        let mut pool = WorkerPool::new(factory, config.workers);
        let mut opt = Sgd::new(config.sgd, net);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = dataset.n_train();
        let mut order: Vec<usize> = (0..n).collect();

        let mut iterations = 0usize;
        let mut history = Vec::new();
        let mut reached = false;
        let mut final_accuracy = 0.0;
        let mut epochs = 0usize;

        for epoch in 0..config.max_epochs {
            opt.set_learning_rate(config.schedule.rate_at(config.sgd.learning_rate, epoch));
            net.set_training(true);
            order.shuffle(&mut rng);
            for chunk in order.chunks(config.batch_size) {
                let (x, y) = dataset.train_batch(chunk);
                pool.reduce_gradients(net, &x, &y);
                opt.step(net);
                iterations += 1;
            }
            epochs += 1;
            final_accuracy = evaluate(net, dataset);
            history.push((iterations, final_accuracy));
            if final_accuracy >= config.target_accuracy {
                reached = true;
                break;
            }
        }
        TrainOutcome { reached, iterations, epochs, final_accuracy, history }
    }
}

/// Test-set accuracy, evaluated in bounded batches (evaluation mode:
/// dropout and similar layers are disabled).
pub fn evaluate(net: &mut Network, dataset: &Dataset) -> f64 {
    net.set_training(false);
    let n = dataset.n_test();
    let dim = dataset.dim();
    let chunk = 256usize;
    let mut correct = 0.0;
    let mut seen = 0usize;
    let mut start = 0usize;
    while start < n {
        let end = (start + chunk).min(n);
        let rows = end - start;
        let x = Tensor::from_vec(
            &[rows, dim],
            dataset.x_test().data()[start * dim..end * dim].to_vec(),
        );
        let logits = net.forward(&x);
        let acc = classification_accuracy(&logits, &dataset.y_test()[start..end]);
        correct += acc * rows as f64;
        seen += rows;
        start = end;
    }
    correct / seen as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CifarLikeConfig;

    fn easy_dataset() -> Dataset {
        Dataset::cifar_like(CifarLikeConfig {
            classes: 4,
            side: 4,
            train: 200,
            test: 80,
            noise: 0.3,
            ..Default::default()
        })
    }

    #[test]
    fn reaches_target_on_easy_data() {
        let ds = easy_dataset();
        let mut net = Network::mlp(&[ds.dim(), 32, ds.classes()], 1);
        let config = TrainerConfig {
            batch_size: 20,
            sgd: SgdConfig {
                learning_rate: 0.05,
                momentum: 0.9,
                weight_decay: 0.0,
                nesterov: false,
            },
            target_accuracy: 0.9,
            max_epochs: 50,
            seed: 3,
            ..Default::default()
        };
        let out = Trainer::run(&mut net, &ds, &config);
        assert!(out.reached, "accuracy {} after {} epochs", out.final_accuracy, out.epochs);
        assert!(out.final_accuracy >= 0.9);
        assert_eq!(out.history.len(), out.epochs);
        // Iterations = epochs × ceil(n/B).
        assert_eq!(out.iterations, out.epochs * 10);
    }

    #[test]
    fn respects_max_epochs() {
        let ds = easy_dataset();
        let mut net = Network::mlp(&[ds.dim(), 8, ds.classes()], 2);
        let config = TrainerConfig {
            batch_size: 50,
            sgd: SgdConfig {
                learning_rate: 1e-5,
                momentum: 0.0,
                weight_decay: 0.0,
                nesterov: false,
            }, // far too slow
            target_accuracy: 0.99,
            max_epochs: 2,
            seed: 3,
            ..Default::default()
        };
        let out = Trainer::run(&mut net, &ds, &config);
        assert!(!out.reached);
        assert_eq!(out.epochs, 2);
    }

    #[test]
    fn accuracy_history_is_recorded_per_epoch() {
        let ds = easy_dataset();
        let mut net = Network::mlp(&[ds.dim(), 16, ds.classes()], 4);
        let config = TrainerConfig {
            batch_size: 40,
            sgd: SgdConfig {
                learning_rate: 0.02,
                momentum: 0.9,
                weight_decay: 0.0,
                nesterov: false,
            },
            target_accuracy: 2.0, // unreachable: run all epochs
            max_epochs: 3,
            seed: 5,
            ..Default::default()
        };
        let out = Trainer::run(&mut net, &ds, &config);
        assert_eq!(out.history.len(), 3);
        // Iterations grow monotonically in the history.
        assert!(out.history.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn parallel_trainer_matches_serial_trajectory() {
        // §IV-B end to end: the 3-worker run must reach the same accuracy
        // trajectory as the serial run (same seed, same updates up to
        // float summation order).
        let ds = easy_dataset();
        let topo = [ds.dim(), 16, ds.classes()];
        let config = TrainerConfig {
            batch_size: 25,
            sgd: SgdConfig {
                learning_rate: 0.03,
                momentum: 0.9,
                weight_decay: 0.0,
                nesterov: false,
            },
            target_accuracy: 2.0,
            max_epochs: 3,
            seed: 5,
            ..Default::default()
        };
        let mut serial_net = Network::mlp(&topo, 8);
        let serial = Trainer::run(&mut serial_net, &ds, &config);

        let par_config = TrainerConfig { workers: 3, ..config };
        let mut par_net = Network::mlp(&topo, 8);
        let parallel =
            Trainer::run_parallel(&mut par_net, || Network::mlp(&topo, 8), &ds, &par_config);

        assert_eq!(serial.iterations, parallel.iterations);
        assert_eq!(serial.epochs, parallel.epochs);
        for ((i1, a1), (i2, a2)) in serial.history.iter().zip(&parallel.history) {
            assert_eq!(i1, i2);
            assert!((a1 - a2).abs() < 0.05, "epoch accuracy {a1} vs {a2}");
        }
    }

    #[test]
    #[should_panic(expected = "run_parallel")]
    fn serial_entry_rejects_multiple_workers() {
        let ds = easy_dataset();
        let mut net = Network::mlp(&[ds.dim(), ds.classes()], 1);
        let config = TrainerConfig { workers: 2, max_epochs: 1, ..Default::default() };
        let _ = Trainer::run(&mut net, &ds, &config);
    }

    #[test]
    fn convnet_trains_on_images_end_to_end() {
        // Tiny conv stack on 8x8 "images" via the flat trainer (the
        // network's leading Reshape handles the NCHW adaptation).
        let ds = Dataset::cifar_like(CifarLikeConfig {
            classes: 3,
            side: 8,
            train: 90,
            test: 45,
            noise: 0.4,
            ..Default::default()
        });
        let mut net = Network::cifar_convnet(8, 3, 5);
        let config = TrainerConfig {
            batch_size: 30,
            sgd: SgdConfig {
                learning_rate: 0.05,
                momentum: 0.9,
                weight_decay: 0.0,
                nesterov: false,
            },
            target_accuracy: 0.8,
            max_epochs: 25,
            seed: 3,
            ..Default::default()
        };
        let out = Trainer::run(&mut net, &ds, &config);
        assert!(out.reached, "convnet accuracy {} after {} epochs", out.final_accuracy, out.epochs);
    }

    #[test]
    fn dropout_network_trains_and_evaluates_deterministically() {
        let ds = easy_dataset();
        let mut net = Network::mlp_dropout(&[ds.dim(), 32, ds.classes()], 0.2, 21);
        let config = TrainerConfig {
            batch_size: 20,
            sgd: SgdConfig {
                learning_rate: 0.05,
                momentum: 0.9,
                weight_decay: 1e-4,
                nesterov: false,
            },
            target_accuracy: 0.85,
            max_epochs: 60,
            seed: 3,
            ..Default::default()
        };
        let out = Trainer::run(&mut net, &ds, &config);
        assert!(out.reached, "dropout net accuracy {}", out.final_accuracy);
        // Evaluation is deterministic (dropout off).
        let a = evaluate(&mut net, &ds);
        let b = evaluate(&mut net, &ds);
        assert_eq!(a, b);
    }

    #[test]
    fn step_decay_schedule_changes_late_epochs() {
        // With an aggressive step decay, late-epoch weight movement must be
        // much smaller than with a constant rate.
        let ds = easy_dataset();
        let base = TrainerConfig {
            batch_size: 50,
            sgd: SgdConfig {
                learning_rate: 0.05,
                momentum: 0.0,
                weight_decay: 0.0,
                nesterov: false,
            },
            target_accuracy: 2.0,
            max_epochs: 6,
            seed: 3,
            ..Default::default()
        };
        let decayed = TrainerConfig {
            schedule: LrSchedule::StepDecay { every_epochs: 2, factor: 0.01 },
            ..base
        };
        let mut a = Network::mlp(&[ds.dim(), 8, ds.classes()], 13);
        let mut b = Network::mlp(&[ds.dim(), 8, ds.classes()], 13);
        let oa = Trainer::run(&mut a, &ds, &base);
        let ob = Trainer::run(&mut b, &ds, &decayed);
        assert_eq!(oa.iterations, ob.iterations);
        // Accuracy trajectories differ once the decay kicks in.
        assert_ne!(oa.history, ob.history);
    }

    #[test]
    fn training_is_deterministic() {
        let ds = easy_dataset();
        let config = TrainerConfig {
            batch_size: 25,
            sgd: SgdConfig {
                learning_rate: 0.03,
                momentum: 0.5,
                weight_decay: 0.0,
                nesterov: false,
            },
            target_accuracy: 2.0,
            max_epochs: 2,
            seed: 9,
            ..Default::default()
        };
        let mut a = Network::mlp(&[ds.dim(), 8, ds.classes()], 11);
        let mut b = Network::mlp(&[ds.dim(), 8, ds.classes()], 11);
        let oa = Trainer::run(&mut a, &ds, &config);
        let ob = Trainer::run(&mut b, &ds, &config);
        assert_eq!(oa, ob);
    }
}
