//! Learning-rate schedules.
//!
//! Caffe's `cifar10_full` recipe — the paper's baseline — drops the
//! learning rate in steps late in training; any serious reproduction of
//! "tune the learning rate" needs schedules as well as the base rate.

/// How the learning rate evolves over epochs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LrSchedule {
    /// Constant rate (the paper's tuning experiments hold it fixed).
    #[default]
    Constant,
    /// Multiply by `factor` every `every_epochs` epochs (Caffe's "step").
    StepDecay {
        /// Epoch interval between drops.
        every_epochs: usize,
        /// Multiplicative factor applied at each drop (< 1).
        factor: f32,
    },
    /// `base · rate^epoch` (Caffe's "exp").
    Exponential {
        /// Per-epoch multiplicative rate (< 1 decays).
        rate: f32,
    },
}

impl LrSchedule {
    /// Learning rate at the given 0-based epoch.
    pub fn rate_at(&self, base: f32, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::StepDecay { every_epochs, factor } => {
                assert!(every_epochs > 0, "step interval must be positive");
                base * factor.powi((epoch / every_epochs) as i32)
            }
            LrSchedule::Exponential { rate } => base * rate.powi(epoch as i32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = LrSchedule::Constant;
        assert_eq!(s.rate_at(0.1, 0), 0.1);
        assert_eq!(s.rate_at(0.1, 100), 0.1);
    }

    #[test]
    fn step_decay_drops_at_boundaries() {
        let s = LrSchedule::StepDecay { every_epochs: 10, factor: 0.1 };
        assert_eq!(s.rate_at(1.0, 0), 1.0);
        assert_eq!(s.rate_at(1.0, 9), 1.0);
        assert!((s.rate_at(1.0, 10) - 0.1).abs() < 1e-7);
        assert!((s.rate_at(1.0, 25) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn exponential_decays_smoothly() {
        let s = LrSchedule::Exponential { rate: 0.5 };
        assert_eq!(s.rate_at(1.0, 0), 1.0);
        assert_eq!(s.rate_at(1.0, 1), 0.5);
        assert_eq!(s.rate_at(1.0, 3), 0.125);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn step_rejects_zero_interval() {
        let _ = LrSchedule::StepDecay { every_epochs: 0, factor: 0.5 }.rate_at(1.0, 1);
    }
}
