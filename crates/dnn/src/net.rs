//! Sequential network container.

use crate::layers::{Conv2d, Dense, Flatten, Layer, MaxPool2d, Relu};
use crate::layers::{Dropout, Reshape};
use crate::tensor::Tensor;

/// A stack of layers executed in order.
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        write!(f, "Network({})", names.join(" -> "))
    }
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// A multilayer perceptron: `dims[0] → dims[1] → … → dims.last()`,
    /// ReLU between layers, raw logits out.
    pub fn mlp(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut net = Self::new();
        for (i, pair) in dims.windows(2).enumerate() {
            net = net.push(Dense::new(pair[0], pair[1], seed.wrapping_add(i as u64)));
            if i + 2 < dims.len() {
                net = net.push(Relu::new());
            }
        }
        net
    }

    /// An MLP with inverted dropout after each hidden activation — the
    /// regularised variant for noisy data.
    pub fn mlp_dropout(dims: &[usize], drop_p: f32, seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut net = Self::new();
        for (i, pair) in dims.windows(2).enumerate() {
            net = net.push(Dense::new(pair[0], pair[1], seed.wrapping_add(i as u64)));
            if i + 2 < dims.len() {
                net = net.push(Relu::new());
                net = net.push(Dropout::new(drop_p, seed.wrapping_add(100 + i as u64)));
            }
        }
        net
    }

    /// A small CIFAR-style convnet for `[B, 3, s, s]` inputs (`s` divisible
    /// by 4): conv–relu–pool twice, then a dense classifier head. Shaped
    /// after Caffe's `cifar10_full` at reduced width.
    pub fn cifar_convnet(side: usize, classes: usize, seed: u64) -> Self {
        assert!(side.is_multiple_of(4), "side must be divisible by 4");
        let flat = 8 * (side / 4) * (side / 4);
        Self::new()
            .push(Reshape::new(&[3, side, side]))
            .push(Conv2d::new(3, 8, 3, 1, seed))
            .push(Relu::new())
            .push(MaxPool2d::new(2))
            .push(Conv2d::new(8, 8, 3, 1, seed + 1))
            .push(Relu::new())
            .push(MaxPool2d::new(2))
            .push(Flatten::new())
            .push(Dense::new(flat, classes, seed + 2))
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable scalars.
    pub fn n_params(&mut self) -> usize {
        self.layers.iter_mut().map(|l| l.n_params()).sum()
    }

    /// Forward pass through all layers.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Backward pass; parameter gradients accumulate inside the layers.
    pub fn backward(&mut self, grad: &Tensor) {
        let mut cur = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
    }

    /// Clears all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Switches every layer between training and evaluation behaviour.
    pub fn set_training(&mut self, training: bool) {
        for layer in &mut self.layers {
            layer.set_training(training);
        }
    }

    /// All `(param, grad)` pairs across layers, in a stable order.
    pub fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    /// Copies all parameters from another network of identical topology.
    pub fn copy_params_from(&mut self, other: &mut Network) {
        let theirs: Vec<Vec<f32>> =
            other.params_mut().iter().map(|(p, _)| p.data().to_vec()).collect();
        let mut mine = self.params_mut();
        assert_eq!(mine.len(), theirs.len(), "topology mismatch");
        for ((p, _), src) in mine.iter_mut().zip(theirs) {
            p.data_mut().copy_from_slice(&src);
        }
    }

    /// Adds `other`'s gradients into this network's gradients (used by the
    /// data-parallel reduction of §IV-B).
    pub fn accumulate_grads_from(&mut self, other: &mut Network) {
        let theirs: Vec<Vec<f32>> =
            other.params_mut().iter().map(|(_, g)| g.data().to_vec()).collect();
        let mut mine = self.params_mut();
        assert_eq!(mine.len(), theirs.len(), "topology mismatch");
        for ((_, g), src) in mine.iter_mut().zip(theirs) {
            for (a, b) in g.data_mut().iter_mut().zip(src) {
                *a += b;
            }
        }
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;

    #[test]
    fn mlp_builder_shapes() {
        let mut net = Network::mlp(&[8, 16, 4], 1);
        assert_eq!(net.depth(), 3); // dense, relu, dense
        assert_eq!(net.n_params(), 8 * 16 + 16 + 16 * 4 + 4);
        let y = net.forward(&Tensor::zeros(&[2, 8]));
        assert_eq!(y.shape(), &[2, 4]);
    }

    #[test]
    fn convnet_builder_shapes() {
        let mut net = Network::cifar_convnet(8, 10, 2);
        // Flat input: the leading Reshape adapts it for the conv stack.
        let y = net.forward(&Tensor::zeros(&[2, 3 * 8 * 8]));
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        let mut net = Network::mlp(&[4, 12, 3], 3);
        let x = Tensor::from_vec(&[6, 4], (0..24).map(|i| (i as f32).cos()).collect());
        let labels = vec![0usize, 1, 2, 0, 1, 2];
        let (l0, grad) = softmax_cross_entropy(&net.forward(&x), &labels);
        net.zero_grads();
        net.backward(&grad);
        // Plain gradient step.
        for (p, g) in net.params_mut() {
            for (pv, gv) in p.data_mut().iter_mut().zip(g.data()) {
                *pv -= 0.5 * gv;
            }
        }
        let (l1, _) = softmax_cross_entropy(&net.forward(&x), &labels);
        assert!(l1 < l0, "loss must drop: {l0} -> {l1}");
    }

    #[test]
    fn copy_params_makes_outputs_identical() {
        let mut a = Network::mlp(&[5, 7, 2], 10);
        let mut b = Network::mlp(&[5, 7, 2], 99);
        let x = Tensor::from_vec(&[1, 5], vec![0.1, -0.2, 0.3, 0.4, -0.5]);
        assert_ne!(a.forward(&x).data(), b.forward(&x).data());
        b.copy_params_from(&mut a);
        assert_eq!(a.forward(&x).data(), b.forward(&x).data());
    }

    #[test]
    fn accumulate_grads_sums() {
        let mut a = Network::mlp(&[2, 2], 1);
        let mut b = Network::mlp(&[2, 2], 1);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, -1.0]);
        let (_, g) = softmax_cross_entropy(&a.forward(&x), &[0]);
        a.zero_grads();
        a.backward(&g);
        b.zero_grads();
        b.forward(&x);
        b.backward(&g);
        let before: Vec<f32> = a.params_mut().iter().map(|(_, g)| g.data()[0]).collect();
        a.accumulate_grads_from(&mut b);
        let after: Vec<f32> = a.params_mut().iter().map(|(_, g)| g.data()[0]).collect();
        for (x, y) in before.iter().zip(&after) {
            assert!((y - 2.0 * x).abs() < 1e-6);
        }
    }

    #[test]
    fn debug_lists_layers() {
        let net = Network::mlp(&[2, 2, 2], 1);
        assert_eq!(format!("{net:?}"), "Network(dense -> relu -> dense)");
    }
}
