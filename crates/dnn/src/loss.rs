//! Softmax cross-entropy loss.

// Batch loops index logits rows and labels together.
#![allow(clippy::needless_range_loop)]

use crate::tensor::{Elem, Tensor};

/// Computes mean softmax cross-entropy over a batch of logits `[B, K]` with
/// integer class labels, returning `(loss, ∂loss/∂logits)`.
///
/// The gradient is already divided by the batch size, so downstream layers
/// receive the mean-gradient convention the SGD update (eq. 8) expects.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f64, Tensor) {
    let (b, k) = (logits.rows(), logits.cols());
    assert_eq!(labels.len(), b, "one label per batch row");
    let mut grad = Tensor::zeros(&[b, k]);
    let mut loss = 0.0f64;
    for i in 0..b {
        let row = &logits.data()[i * k..(i + 1) * k];
        let label = labels[i];
        assert!(label < k, "label {label} out of range for {k} classes");
        // Numerically stable softmax.
        let max = row.iter().fold(Elem::NEG_INFINITY, |a, &v| a.max(v));
        let exps: Vec<f64> = row.iter().map(|&v| ((v - max) as f64).exp()).collect();
        let sum: f64 = exps.iter().sum();
        loss += -(exps[label] / sum).ln();
        let grow = &mut grad.data_mut()[i * k..(i + 1) * k];
        for (j, g) in grow.iter_mut().enumerate() {
            let p = (exps[j] / sum) as Elem;
            *g = (p - if j == label { 1.0 } else { 0.0 }) / b as Elem;
        }
    }
    (loss / b as f64, grad)
}

/// Index of the max logit per row.
pub fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    let (b, k) = (logits.rows(), logits.cols());
    (0..b)
        .map(|i| {
            let row = &logits.data()[i * k..(i + 1) * k];
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(j, _)| j)
                .expect("non-empty row")
        })
        .collect()
}

/// Fraction of rows whose argmax equals the label.
pub fn classification_accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let preds = argmax_rows(logits);
    assert_eq!(preds.len(), labels.len());
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / labels.len() as f64
}

/// k×k confusion matrix: `counts[true * k + predicted]`.
pub fn confusion_matrix(logits: &Tensor, labels: &[usize], k: usize) -> Vec<usize> {
    let preds = argmax_rows(logits);
    assert_eq!(preds.len(), labels.len());
    let mut counts = vec![0usize; k * k];
    for (&p, &t) in preds.iter().zip(labels) {
        assert!(t < k && p < k, "label/prediction out of range");
        counts[t * k + p] += 1;
    }
    counts
}

/// Per-class recall from a confusion matrix (empty classes report 0).
pub fn per_class_recall(confusion: &[usize], k: usize) -> Vec<f64> {
    assert_eq!(confusion.len(), k * k);
    (0..k)
        .map(|c| {
            let total: usize = confusion[c * k..(c + 1) * k].iter().sum();
            if total == 0 {
                0.0
            } else {
                confusion[c * k + c] as f64 / total as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor::from_vec(&[1, 3], vec![10.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn gradient_is_softmax_minus_onehot_over_batch() {
        let logits = Tensor::from_vec(&[1, 2], vec![0.0, 0.0]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1]);
        assert!((grad.data()[0] - 0.5).abs() < 1e-6);
        assert!((grad.data()[1] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.3, -0.1, 0.8, 1.2, 0.0, -0.7]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels);
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (fm, _) = softmax_cross_entropy(&lm, &labels);
            let numeric = (fp - fm) / (2.0 * eps as f64);
            assert!(
                (numeric - grad.data()[idx] as f64).abs() < 1e-4,
                "grad[{idx}]: numeric {numeric} vs {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn stability_with_large_logits() {
        let logits = Tensor::from_vec(&[1, 2], vec![1000.0, -1000.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(grad.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn accuracy_and_argmax() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.1, 0.9, 0.0, 0.7, 0.1, 0.2]);
        assert_eq!(argmax_rows(&logits), vec![1, 0]);
        assert_eq!(classification_accuracy(&logits, &[1, 0]), 1.0);
        assert_eq!(classification_accuracy(&logits, &[1, 2]), 0.5);
    }

    #[test]
    fn confusion_matrix_counts() {
        // Row 0 predicts class 1 (true 0); row 1 predicts 0 (true 0);
        // row 2 predicts 1 (true 1).
        let logits = Tensor::from_vec(&[3, 2], vec![0.0, 1.0, 1.0, 0.0, 0.0, 2.0]);
        let cm = confusion_matrix(&logits, &[0, 0, 1], 2);
        assert_eq!(cm, vec![1, 1, 0, 1]);
        let recall = per_class_recall(&cm, 2);
        assert_eq!(recall, vec![0.5, 1.0]);
    }

    #[test]
    fn per_class_recall_handles_empty_class() {
        let cm = vec![2, 0, 0, 0]; // class 1 never appears
        assert_eq!(per_class_recall(&cm, 2), vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        let _ = softmax_cross_entropy(&Tensor::zeros(&[1, 2]), &[5]);
    }
}
