//! Max pooling.

use crate::layers::Layer;
use crate::tensor::Tensor;

/// 2-D max pooling over `[batch, c, h, w]`, square window, stride = window.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    k: usize,
    /// Flat argmax index per output element, from the last forward pass.
    argmax: Vec<usize>,
    cached_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Pooling with a `k x k` window.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "window must be positive");
        Self { k, argmax: Vec::new(), cached_shape: Vec::new() }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let [b, c, h, w] = x.shape() else { panic!("pool expects NCHW input") };
        let (b, c, h, w) = (*b, *c, *h, *w);
        assert!(h % self.k == 0 && w % self.k == 0, "input not divisible by window");
        let (oh, ow) = (h / self.k, w / self.k);
        let mut y = Tensor::zeros(&[b, c, oh, ow]);
        self.argmax.clear();
        self.argmax.reserve(y.len());
        self.cached_shape = x.shape().to_vec();
        let xd = x.data();
        let yd = y.data_mut();
        for s in 0..b {
            for ch in 0..c {
                let plane = (s * c + ch) * h * w;
                let out_plane = (s * c + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                let idx = plane + (oy * self.k + ky) * w + ox * self.k + kx;
                                if xd[idx] > best {
                                    best = xd[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        yd[out_plane + oy * ow + ox] = best;
                        self.argmax.push(best_idx);
                    }
                }
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.len(), self.argmax.len(), "backward before forward");
        let mut g = Tensor::zeros(&self.cached_shape);
        let gd = g.data_mut();
        for (&idx, &go) in self.argmax.iter().zip(grad_out.data()) {
            gd[idx] += go;
        }
        g
    }

    fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "maxpool2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_maxima() {
        let mut l = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let y = l.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mut l = MaxPool2d::new(2);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 9.0, 2.0, 3.0]);
        l.forward(&x);
        let g = l.backward(&Tensor::from_vec(&[1, 1, 1, 1], vec![5.0]));
        assert_eq!(g.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rejects_indivisible_input() {
        let mut l = MaxPool2d::new(2);
        let _ = l.forward(&Tensor::zeros(&[1, 1, 3, 3]));
    }

    #[test]
    fn per_channel_independence() {
        let mut l = MaxPool2d::new(2);
        let x = Tensor::from_vec(&[1, 2, 2, 2], vec![1.0, 2.0, 3.0, 4.0, 40.0, 30.0, 20.0, 10.0]);
        let y = l.forward(&x);
        assert_eq!(y.data(), &[4.0, 40.0]);
    }
}
