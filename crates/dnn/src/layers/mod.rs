//! Network layers.
//!
//! Every layer owns its parameters and their gradients; `backward`
//! accumulates parameter gradients and returns the gradient with respect to
//! the layer input, so a [`crate::net::Network`] is just a stack.

pub mod activation;
pub mod conv;
pub mod dense;
pub mod dropout;
pub mod flatten;
pub mod pool;
pub mod reshape;

pub use activation::{Relu, Sigmoid, Tanh};
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use pool::MaxPool2d;
pub use reshape::Reshape;

use crate::tensor::Tensor;

/// A differentiable layer.
pub trait Layer: Send {
    /// Forward pass; caches whatever `backward` needs.
    fn forward(&mut self, x: &Tensor) -> Tensor;

    /// Backward pass: accumulates parameter gradients, returns ∂L/∂input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// `(parameter, gradient)` pairs for the optimiser. Empty for
    /// parameter-free layers.
    fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)>;

    /// Clears accumulated gradients.
    fn zero_grads(&mut self);

    /// Switches between training and evaluation behaviour (dropout etc.).
    /// Most layers behave identically in both modes.
    fn set_training(&mut self, _training: bool) {}

    /// Layer name for diagnostics.
    fn name(&self) -> &'static str;

    /// Number of trainable scalars.
    fn n_params(&mut self) -> usize {
        self.params_mut().iter().map(|(p, _)| p.len()).sum()
    }
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Shared finite-difference gradient checker for layer tests.

    use super::Layer;
    use crate::tensor::{Elem, Tensor};

    /// Checks ∂(Σ out·w)/∂input against central finite differences.
    pub fn check_input_gradient<L: Layer>(layer: &mut L, x: &Tensor, tol: f64) {
        let out = layer.forward(x);
        // Random-ish but deterministic weighting of the output.
        let w: Vec<Elem> =
            (0..out.len()).map(|i| ((i * 2654435761) % 17) as Elem / 17.0 - 0.5).collect();
        let grad_out = Tensor::from_vec(out.shape(), w.clone());
        layer.zero_grads();
        let grad_in = layer.backward(&grad_out);

        let eps: Elem = 1e-2;
        // Probe a spread of input coordinates.
        let stride = (x.len() / 24).max(1);
        for idx in (0..x.len()).step_by(stride) {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let fp: f64 =
                layer.forward(&xp).data().iter().zip(&w).map(|(&o, &wi)| (o * wi) as f64).sum();
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fm: f64 =
                layer.forward(&xm).data().iter().zip(&w).map(|(&o, &wi)| (o * wi) as f64).sum();
            let numeric = (fp - fm) / (2.0 * eps as f64);
            let analytic = grad_in.data()[idx] as f64;
            assert!(
                (numeric - analytic).abs() <= tol * (1.0 + numeric.abs().max(analytic.abs())),
                "input grad at {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    /// Checks parameter gradients the same way.
    pub fn check_param_gradients<L: Layer>(layer: &mut L, x: &Tensor, tol: f64) {
        let out = layer.forward(x);
        let w: Vec<Elem> =
            (0..out.len()).map(|i| ((i * 40503) % 13) as Elem / 13.0 - 0.5).collect();
        let grad_out = Tensor::from_vec(out.shape(), w.clone());
        layer.zero_grads();
        let _ = layer.backward(&grad_out);

        let n_groups = layer.params_mut().len();
        let eps: Elem = 1e-2;
        for g in 0..n_groups {
            let len = layer.params_mut()[g].0.len();
            let stride = (len / 16).max(1);
            for idx in (0..len).step_by(stride) {
                let analytic = layer.params_mut()[g].1.data()[idx] as f64;
                layer.params_mut()[g].0.data_mut()[idx] += eps;
                let fp: f64 =
                    layer.forward(x).data().iter().zip(&w).map(|(&o, &wi)| (o * wi) as f64).sum();
                layer.params_mut()[g].0.data_mut()[idx] -= 2.0 * eps;
                let fm: f64 =
                    layer.forward(x).data().iter().zip(&w).map(|(&o, &wi)| (o * wi) as f64).sum();
                layer.params_mut()[g].0.data_mut()[idx] += eps;
                let numeric = (fp - fm) / (2.0 * eps as f64);
                assert!(
                    (numeric - analytic).abs() <= tol * (1.0 + numeric.abs().max(analytic.abs())),
                    "param group {g} grad at {idx}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }
}
