//! Flatten: collapses `[batch, ...]` to `[batch, prod(...)]`.

use crate::layers::Layer;
use crate::tensor::Tensor;

/// Shape adapter between convolutional and dense stacks.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_shape: Vec<usize>,
}

impl Flatten {
    /// A fresh flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cached_shape = x.shape().to_vec();
        let batch = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        x.clone().reshape(&[batch, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(!self.cached_shape.is_empty(), "backward before forward");
        grad_out.clone().reshape(&self.cached_shape)
    }

    fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_shape() {
        let mut l = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let y = l.forward(&x);
        assert_eq!(y.shape(), &[2, 48]);
        let g = l.backward(&y);
        assert_eq!(g.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn preserves_data_order() {
        let mut l = Flatten::new();
        let x = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = l.forward(&x);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 4.0]);
    }
}
