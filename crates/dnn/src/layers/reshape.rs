//! Reshape: adapts flat `[batch, prod(tail)]` inputs to `[batch, tail…]`
//! (the inverse of [`crate::layers::Flatten`]), so convolutional stacks
//! compose with the flat-batch [`crate::train::Trainer`].

use crate::layers::Layer;
use crate::tensor::Tensor;

/// Shape adapter from flat rows to structured tensors.
#[derive(Debug, Clone)]
pub struct Reshape {
    /// Target shape of one sample (without the batch dimension).
    tail: Vec<usize>,
}

impl Reshape {
    /// Creates a reshape to `[batch, tail…]`.
    ///
    /// # Panics
    /// Panics if the tail is empty or has zero volume.
    pub fn new(tail: &[usize]) -> Self {
        assert!(!tail.is_empty(), "tail must be non-empty");
        assert!(tail.iter().product::<usize>() > 0, "tail must have volume");
        Self { tail: tail.to_vec() }
    }
}

impl Layer for Reshape {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let batch = x.shape()[0];
        let mut shape = vec![batch];
        shape.extend_from_slice(&self.tail);
        x.clone().reshape(&shape)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let batch = grad_out.shape()[0];
        let flat: usize = self.tail.iter().product();
        grad_out.clone().reshape(&[batch, flat])
    }

    fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "reshape"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_round_trip() {
        let mut l = Reshape::new(&[3, 2, 2]);
        let x = Tensor::zeros(&[5, 12]);
        let y = l.forward(&x);
        assert_eq!(y.shape(), &[5, 3, 2, 2]);
        let g = l.backward(&y);
        assert_eq!(g.shape(), &[5, 12]);
    }

    #[test]
    fn data_order_is_preserved() {
        let mut l = Reshape::new(&[2, 2]);
        let x = Tensor::from_vec(&[1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(l.forward(&x).data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "volume")]
    fn rejects_zero_volume() {
        let _ = Reshape::new(&[0, 3]);
    }
}
