//! Activation layers.

use crate::layers::Layer;
use crate::tensor::Tensor;

/// Rectified linear unit, applied elementwise.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    /// Mask of positive inputs from the last forward pass.
    mask: Vec<bool>,
}

impl Relu {
    /// A fresh ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut y = x.clone();
        self.mask.clear();
        self.mask.reserve(x.len());
        for v in y.data_mut() {
            let pos = *v > 0.0;
            self.mask.push(pos);
            if !pos {
                *v = 0.0;
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.len(), self.mask.len(), "backward before forward");
        let mut g = grad_out.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(&self.mask) {
            if !keep {
                *v = 0.0;
            }
        }
        g
    }

    fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    /// Cached outputs from the last forward pass (tanh' = 1 − tanh²).
    cached_out: Vec<f32>,
}

impl Tanh {
    /// A fresh tanh layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut y = x.clone();
        for v in y.data_mut() {
            *v = v.tanh();
        }
        self.cached_out = y.data().to_vec();
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.len(), self.cached_out.len(), "backward before forward");
        let mut g = grad_out.clone();
        for (v, &o) in g.data_mut().iter_mut().zip(&self.cached_out) {
            *v *= 1.0 - o * o;
        }
        g
    }

    fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "tanh"
    }
}

/// Logistic sigmoid activation.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    /// Cached outputs from the last forward pass (σ' = σ(1 − σ)).
    cached_out: Vec<f32>,
}

impl Sigmoid {
    /// A fresh sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut y = x.clone();
        for v in y.data_mut() {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
        self.cached_out = y.data().to_vec();
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.len(), self.cached_out.len(), "backward before forward");
        let mut g = grad_out.clone();
        for (v, &o) in g.data_mut().iter_mut().zip(&self.cached_out) {
            *v *= o * (1.0 - o);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "sigmoid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn forward_clamps_negatives() {
        let mut l = Relu::new();
        let x = Tensor::from_vec(&[1, 4], vec![-1.0, 0.0, 2.0, -3.0]);
        let y = l.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut l = Relu::new();
        let x = Tensor::from_vec(&[1, 3], vec![-1.0, 1.0, 2.0]);
        l.forward(&x);
        let g = l.backward(&Tensor::from_vec(&[1, 3], vec![5.0, 5.0, 5.0]));
        assert_eq!(g.data(), &[0.0, 5.0, 5.0]);
    }

    #[test]
    fn gradient_check_away_from_kink() {
        let mut l = Relu::new();
        // Values far from zero so finite differences don't straddle the kink.
        let x = Tensor::from_vec(&[2, 4], vec![-2.0, 3.0, -1.5, 2.5, 4.0, -3.0, 1.5, -2.5]);
        gradcheck::check_input_gradient(&mut l, &x, 1e-2);
    }

    #[test]
    fn tanh_forward_and_gradient_check() {
        let mut l = Tanh::new();
        let x = Tensor::from_vec(&[1, 3], vec![-1.0, 0.0, 2.0]);
        let y = l.forward(&x);
        assert!((y.data()[0] - (-1.0f32).tanh()).abs() < 1e-7);
        assert_eq!(y.data()[1], 0.0);
        gradcheck::check_input_gradient(&mut l, &x, 1e-2);
    }

    #[test]
    fn sigmoid_forward_and_gradient_check() {
        let mut l = Sigmoid::new();
        let x = Tensor::from_vec(&[2, 2], vec![-2.0, 0.0, 1.0, 3.0]);
        let y = l.forward(&x);
        assert_eq!(y.data()[1], 0.5);
        assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        gradcheck::check_input_gradient(&mut l, &x, 1e-2);
    }

    #[test]
    fn saturating_activations_have_small_tail_gradients() {
        let mut l = Sigmoid::new();
        let x = Tensor::from_vec(&[1, 2], vec![20.0, -20.0]);
        l.forward(&x);
        let g = l.backward(&Tensor::from_vec(&[1, 2], vec![1.0, 1.0]));
        assert!(g.data().iter().all(|&v| v.abs() < 1e-6), "{:?}", g.data());
    }

    #[test]
    fn has_no_params() {
        let mut l = Relu::new();
        assert!(l.params_mut().is_empty());
        assert_eq!(l.n_params(), 0);
        assert_eq!(l.name(), "relu");
    }
}
