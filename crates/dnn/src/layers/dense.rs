//! Fully-connected layer: `y = x W + b`.

use crate::init;
use crate::layers::Layer;
use crate::tensor::{matmul, matmul_nt, matmul_tn, Tensor};

/// Dense (fully-connected) layer with weights `[in, out]` and bias `[out]`.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Xavier-initialised layer.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Self {
            weight: init::xavier(&[in_dim, out_dim], in_dim, out_dim, seed),
            bias: Tensor::zeros(&[out_dim]),
            grad_weight: Tensor::zeros(&[in_dim, out_dim]),
            grad_bias: Tensor::zeros(&[out_dim]),
            cached_input: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.shape()[1]
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols(), self.in_dim(), "dense input width mismatch");
        let mut y = matmul(x, &self.weight);
        let out = self.out_dim();
        for i in 0..y.rows() {
            let row = &mut y.data_mut()[i * out..(i + 1) * out];
            for (v, &b) in row.iter_mut().zip(self.bias.data()) {
                *v += b;
            }
        }
        self.cached_input = Some(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before forward");
        // dW += xᵀ g, db += Σ_batch g, dx = g Wᵀ.
        self.grad_weight.add_assign(&matmul_tn(x, grad_out));
        let out = self.out_dim();
        for i in 0..grad_out.rows() {
            let row = &grad_out.data()[i * out..(i + 1) * out];
            for (b, &g) in self.grad_bias.data_mut().iter_mut().zip(row) {
                *b += g;
            }
        }
        matmul_nt(grad_out, &self.weight)
    }

    fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![(&mut self.weight, &mut self.grad_weight), (&mut self.bias, &mut self.grad_bias)]
    }

    fn zero_grads(&mut self) {
        self.grad_weight.data_mut().fill(0.0);
        self.grad_bias.data_mut().fill(0.0);
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn forward_shape_and_bias() {
        let mut l = Dense::new(3, 2, 1);
        l.bias.data_mut().copy_from_slice(&[10.0, 20.0]);
        let x = Tensor::zeros(&[4, 3]);
        let y = l.forward(&x);
        assert_eq!(y.shape(), &[4, 2]);
        // Zero input → bias only.
        assert_eq!(y.at(0, 0), 10.0);
        assert_eq!(y.at(3, 1), 20.0);
    }

    #[test]
    fn input_gradient_checks() {
        let mut l = Dense::new(5, 3, 2);
        let x = Tensor::from_vec(&[2, 5], (0..10).map(|i| i as f32 / 10.0 - 0.4).collect());
        gradcheck::check_input_gradient(&mut l, &x, 1e-2);
    }

    #[test]
    fn param_gradient_checks() {
        let mut l = Dense::new(4, 3, 3);
        let x = Tensor::from_vec(&[3, 4], (0..12).map(|i| (i as f32).sin()).collect());
        gradcheck::check_param_gradients(&mut l, &x, 1e-2);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut l = Dense::new(2, 2, 4);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]);
        let g = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]);
        l.forward(&x);
        l.backward(&g);
        let first = l.grad_weight.clone();
        l.forward(&x);
        l.backward(&g);
        // Doubled after second accumulation.
        for (a, b) in l.grad_weight.data().iter().zip(first.data()) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
        l.zero_grads();
        assert!(l.grad_weight.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn n_params_counts_weights_and_bias() {
        let mut l = Dense::new(7, 5, 5);
        assert_eq!(l.n_params(), 7 * 5 + 5);
        assert_eq!(l.name(), "dense");
    }
}
