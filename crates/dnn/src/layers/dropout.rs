//! Inverted dropout.
//!
//! During training each activation is zeroed with probability `p` and the
//! survivors are scaled by `1/(1−p)`, so evaluation needs no rescaling —
//! the regulariser behind "generalization gap" mitigation in the
//! large-batch literature the paper cites (Keskar et al.).

use crate::layers::Layer;
use crate::tensor::{Elem, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted-dropout layer.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: Elem,
    rng: StdRng,
    mask: Vec<bool>,
    training: bool,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: Elem, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1)");
        Self { p, rng: StdRng::seed_from_u64(seed), mask: Vec::new(), training: true }
    }

    /// Drop probability.
    pub fn p(&self) -> Elem {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        if !self.training || self.p == 0.0 {
            self.mask.clear();
            return x.clone();
        }
        let scale = 1.0 / (1.0 - self.p);
        let mut y = x.clone();
        self.mask.clear();
        self.mask.reserve(x.len());
        for v in y.data_mut() {
            let keep = self.rng.gen::<Elem>() >= self.p;
            self.mask.push(keep);
            *v = if keep { *v * scale } else { 0.0 };
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        if self.mask.is_empty() {
            return grad_out.clone(); // eval mode or p == 0
        }
        assert_eq!(grad_out.len(), self.mask.len(), "backward before forward");
        let scale = 1.0 / (1.0 - self.p);
        let mut g = grad_out.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(&self.mask) {
            *v = if keep { *v * scale } else { 0.0 };
        }
        g
    }

    fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn name(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut l = Dropout::new(0.5, 1);
        l.set_training(false);
        let x = Tensor::from_vec(&[1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(l.forward(&x), x);
        let g = Tensor::from_vec(&[1, 4], vec![1.0; 4]);
        assert_eq!(l.backward(&g), g);
    }

    #[test]
    fn training_drops_and_scales() {
        let mut l = Dropout::new(0.5, 2);
        let x = Tensor::from_vec(&[1, 256], vec![1.0; 256]);
        let y = l.forward(&x);
        let dropped = y.data().iter().filter(|&&v| v == 0.0).count();
        let kept = y.data().iter().filter(|&&v| (v - 2.0).abs() < 1e-6).count();
        assert_eq!(dropped + kept, 256, "values are either 0 or scaled by 2");
        // Roughly half dropped (binomial, wide tolerance).
        assert!((64..=192).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let mut l = Dropout::new(0.3, 3);
        let x = Tensor::from_vec(&[1, 64], vec![1.0; 64]);
        let y = l.forward(&x);
        let g = l.backward(&Tensor::from_vec(&[1, 64], vec![1.0; 64]));
        for (yo, go) in y.data().iter().zip(g.data()) {
            assert_eq!(yo == &0.0, go == &0.0, "mask must match between passes");
        }
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let mut l = Dropout::new(0.0, 4);
        let x = Tensor::from_vec(&[2, 3], vec![1.0, -2.0, 3.0, 4.0, -5.0, 6.0]);
        assert_eq!(l.forward(&x), x);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn rejects_p_of_one() {
        let _ = Dropout::new(1.0, 5);
    }
}
