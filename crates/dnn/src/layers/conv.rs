//! 2-D convolution via im2col + GEMM, the standard CPU lowering used by
//! Caffe (the paper's §IV-C: "the computational kernels of deep learning
//! are mainly matrix-matrix multiply").

use crate::init;
use crate::layers::Layer;
use crate::tensor::{Elem, Tensor};

/// 2-D convolution over `[batch, in_c, h, w]` tensors, stride 1,
/// symmetric zero padding.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    k: usize,
    pad: usize,
    /// Weights `[out_c, in_c * k * k]` (im2col layout).
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// He-initialised convolution.
    pub fn new(in_c: usize, out_c: usize, k: usize, pad: usize, seed: u64) -> Self {
        let fan_in = in_c * k * k;
        Self {
            in_c,
            out_c,
            k,
            pad,
            weight: init::he(&[out_c, fan_in], fan_in, seed),
            bias: Tensor::zeros(&[out_c]),
            grad_weight: Tensor::zeros(&[out_c, fan_in]),
            grad_bias: Tensor::zeros(&[out_c]),
            cached_input: None,
        }
    }

    /// Output spatial size for an input of `h x w`.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h + 2 * self.pad + 1 - self.k, w + 2 * self.pad + 1 - self.k)
    }

    /// im2col for one sample: `[in_c*k*k, oh*ow]`.
    fn im2col(&self, x: &[Elem], h: usize, w: usize) -> Tensor {
        let (oh, ow) = self.out_hw(h, w);
        let kk = self.k * self.k;
        let mut col = Tensor::zeros(&[self.in_c * kk, oh * ow]);
        let cd = col.data_mut();
        for c in 0..self.in_c {
            let plane = &x[c * h * w..(c + 1) * h * w];
            for ky in 0..self.k {
                for kx in 0..self.k {
                    let row = (c * kk + ky * self.k + kx) * (oh * ow);
                    for oy in 0..oh {
                        let iy = (oy + ky) as isize - self.pad as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for ox in 0..ow {
                            let ix = (ox + kx) as isize - self.pad as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            cd[row + oy * ow + ox] = plane[iy as usize * w + ix as usize];
                        }
                    }
                }
            }
        }
        col
    }

    /// col2im accumulate for one sample.
    fn col2im(&self, col: &Tensor, h: usize, w: usize, out: &mut [Elem]) {
        let (oh, ow) = self.out_hw(h, w);
        let kk = self.k * self.k;
        let cd = col.data();
        for c in 0..self.in_c {
            let plane = &mut out[c * h * w..(c + 1) * h * w];
            for ky in 0..self.k {
                for kx in 0..self.k {
                    let row = (c * kk + ky * self.k + kx) * (oh * ow);
                    for oy in 0..oh {
                        let iy = (oy + ky) as isize - self.pad as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for ox in 0..ow {
                            let ix = (ox + kx) as isize - self.pad as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            plane[iy as usize * w + ix as usize] += cd[row + oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let [b, in_c, h, w] = x.shape() else { panic!("conv expects NCHW input") };
        let (b, in_c, h, w) = (*b, *in_c, *h, *w);
        assert_eq!(in_c, self.in_c, "channel mismatch");
        let (oh, ow) = self.out_hw(h, w);
        let mut y = Tensor::zeros(&[b, self.out_c, oh, ow]);
        for s in 0..b {
            let sample = &x.data()[s * in_c * h * w..(s + 1) * in_c * h * w];
            let col = self.im2col(sample, h, w);
            let out = crate::tensor::matmul(&self.weight, &col); // [out_c, oh*ow]
            let dst = &mut y.data_mut()[s * self.out_c * oh * ow..(s + 1) * self.out_c * oh * ow];
            for oc in 0..self.out_c {
                let bias = self.bias.data()[oc];
                let src = &out.data()[oc * oh * ow..(oc + 1) * oh * ow];
                let d = &mut dst[oc * oh * ow..(oc + 1) * oh * ow];
                for (dv, &sv) in d.iter_mut().zip(src) {
                    *dv = sv + bias;
                }
            }
        }
        self.cached_input = Some(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before forward").clone();
        let [b, in_c, h, w] = x.shape() else { unreachable!() };
        let (b, in_c, h, w) = (*b, *in_c, *h, *w);
        let (oh, ow) = self.out_hw(h, w);
        let mut grad_in = Tensor::zeros(&[b, in_c, h, w]);
        for s in 0..b {
            let sample = &x.data()[s * in_c * h * w..(s + 1) * in_c * h * w];
            let col = self.im2col(sample, h, w);
            let g = Tensor::from_vec(
                &[self.out_c, oh * ow],
                grad_out.data()[s * self.out_c * oh * ow..(s + 1) * self.out_c * oh * ow].to_vec(),
            );
            // dW += g · colᵀ ; dcol = Wᵀ · g ; db += row sums of g.
            self.grad_weight.add_assign(&crate::tensor::matmul_nt(&g, &col));
            for oc in 0..self.out_c {
                let sum: Elem = g.data()[oc * oh * ow..(oc + 1) * oh * ow].iter().sum();
                self.grad_bias.data_mut()[oc] += sum;
            }
            let dcol = crate::tensor::matmul_tn(&self.weight, &g);
            let dst = &mut grad_in.data_mut()[s * in_c * h * w..(s + 1) * in_c * h * w];
            self.col2im(&dcol, h, w, dst);
        }
        grad_in
    }

    fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![(&mut self.weight, &mut self.grad_weight), (&mut self.bias, &mut self.grad_bias)]
    }

    fn zero_grads(&mut self) {
        self.grad_weight.data_mut().fill(0.0);
        self.grad_bias.data_mut().fill(0.0);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 kernel with weight 1: output = input (+0 bias).
        let mut l = Conv2d::new(1, 1, 1, 0, 1);
        l.weight.data_mut()[0] = 1.0;
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = l.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_convolution() {
        // 3x3 all-ones kernel, pad 1: each output = sum of the 3x3
        // neighbourhood.
        let mut l = Conv2d::new(1, 1, 3, 1, 2);
        l.weight.data_mut().fill(1.0);
        let x = Tensor::from_vec(&[1, 1, 3, 3], (1..=9).map(|v| v as Elem).collect());
        let y = l.forward(&x);
        // Centre output = 1+2+…+9 = 45; corner (0,0) = 1+2+4+5 = 12.
        assert_eq!(y.at(0, 4), 45.0);
        assert_eq!(y.data()[0], 12.0);
    }

    #[test]
    fn output_shape_with_padding() {
        let l = Conv2d::new(3, 8, 5, 2, 3);
        assert_eq!(l.out_hw(16, 16), (16, 16));
        let l2 = Conv2d::new(3, 8, 3, 0, 3);
        assert_eq!(l2.out_hw(16, 16), (14, 14));
    }

    #[test]
    fn input_gradient_checks() {
        let mut l = Conv2d::new(2, 3, 3, 1, 4);
        let x = Tensor::from_vec(
            &[2, 2, 4, 4],
            (0..64).map(|i| ((i * 7) % 11) as Elem / 11.0 - 0.5).collect(),
        );
        gradcheck::check_input_gradient(&mut l, &x, 2e-2);
    }

    #[test]
    fn param_gradient_checks() {
        let mut l = Conv2d::new(1, 2, 3, 1, 5);
        let x =
            Tensor::from_vec(&[1, 1, 5, 5], (0..25).map(|i| (i as Elem / 25.0).sin()).collect());
        gradcheck::check_param_gradients(&mut l, &x, 2e-2);
    }

    #[test]
    fn multi_batch_matches_per_sample() {
        let mut l = Conv2d::new(1, 2, 3, 1, 6);
        let a = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|i| i as Elem).collect());
        let b = Tensor::from_vec(&[1, 1, 4, 4], (16..32).map(|i| i as Elem).collect());
        let ya = l.forward(&a);
        let yb = l.forward(&b);
        let mut both = a.data().to_vec();
        both.extend_from_slice(b.data());
        let y = l.forward(&Tensor::from_vec(&[2, 1, 4, 4], both));
        assert_eq!(&y.data()[..ya.len()], ya.data());
        assert_eq!(&y.data()[ya.len()..], yb.data());
    }
}
