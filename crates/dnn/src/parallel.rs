//! Data-parallel gradient computation (paper §IV-B).
//!
//! "Our parallel strategy is divide-and-conquer for the data and
//! replication for the weights. … At each iteration, we partition a batch
//! of B samples and each worker gets B/P samples. … After a global sum
//! reduce operation, each worker will get Σ ∆W_i. Then each worker can
//! update their local weights by W = W − η Σ ∆W_i / P."
//!
//! Here the replicas live on crossbeam scoped threads (standing in for the
//! DGX station's four P100s connected by NCCL) and the sum-reduce is an
//! in-process gradient accumulation. Because the per-shard loss gradients
//! are weighted by shard size, the reduced gradient is *bitwise comparable*
//! (up to float summation order) to the single-worker full-batch gradient —
//! which the tests verify.

use crate::loss::softmax_cross_entropy;
use crate::net::Network;
use crate::tensor::Tensor;

/// A pool of weight replicas for data-parallel gradient evaluation.
pub struct WorkerPool {
    replicas: Vec<Network>,
}

impl WorkerPool {
    /// Builds `workers` replicas from a topology factory. The factory must
    /// produce networks of identical topology (weights are overwritten on
    /// every step).
    pub fn new(factory: impl Fn() -> Network, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        Self { replicas: (0..workers).map(|_| factory()).collect() }
    }

    /// Number of replicas.
    pub fn workers(&self) -> usize {
        self.replicas.len()
    }

    /// Computes the full-batch mean-loss gradient of `master` over
    /// `(x, labels)` by sharding the batch across the replicas, running
    /// them concurrently, and sum-reducing into `master`'s gradient
    /// buffers. `master.zero_grads()` is called internally.
    ///
    /// Returns the mean loss over the whole batch.
    pub fn reduce_gradients(&mut self, master: &mut Network, x: &Tensor, labels: &[usize]) -> f64 {
        let b = x.rows();
        assert_eq!(labels.len(), b, "one label per row");
        assert!(b >= 1, "empty batch");
        let p = self.replicas.len().min(b);
        let dim = x.cols();

        // Replicate the weights (the "replication for the weights" half).
        for replica in &mut self.replicas[..p] {
            replica.copy_params_from(master);
        }

        // Shard boundaries: contiguous, sizes differing by at most one.
        let base = b / p;
        let extra = b % p;
        let mut shards: Vec<(usize, usize)> = Vec::with_capacity(p);
        let mut start = 0;
        for w in 0..p {
            let len = base + usize::from(w < extra);
            shards.push((start, len));
            start += len;
        }

        // Each worker computes its shard's *sum* gradient = mean · len.
        let losses: Vec<f64> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = self.replicas[..p]
                .iter_mut()
                .zip(&shards)
                .map(|(replica, &(start, len))| {
                    s.spawn(move |_| {
                        let xs = Tensor::from_vec(
                            &[len, dim],
                            x.data()[start * dim..(start + len) * dim].to_vec(),
                        );
                        let ys = &labels[start..start + len];
                        let logits = replica.forward(&xs);
                        let (loss, mut grad) = softmax_cross_entropy(&logits, ys);
                        // Convert shard-mean gradient into batch-weighted
                        // contribution: scale by len / B.
                        grad.scale(len as f32 / b as f32);
                        replica.zero_grads();
                        replica.backward(&grad);
                        loss * len as f64
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        })
        .expect("scope panicked");

        // Global sum-reduce into the master's gradient buffers.
        master.zero_grads();
        for replica in &mut self.replicas[..p] {
            master.accumulate_grads_from(replica);
        }
        losses.iter().sum::<f64>() / b as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{CifarLikeConfig, Dataset};
    use crate::optim::{Sgd, SgdConfig};

    fn dataset() -> Dataset {
        Dataset::cifar_like(CifarLikeConfig {
            classes: 3,
            side: 4,
            train: 24,
            test: 12,
            noise: 0.5,
            ..Default::default()
        })
    }

    fn factory(ds: &Dataset) -> impl Fn() -> Network + '_ {
        move || Network::mlp(&[ds.dim(), 8, ds.classes()], 17)
    }

    #[test]
    fn parallel_gradient_equals_serial_gradient() {
        let ds = dataset();
        let (x, y) = ds.train_batch(&(0..16).collect::<Vec<_>>());

        // Serial reference.
        let mut serial = Network::mlp(&[ds.dim(), 8, ds.classes()], 17);
        let logits = serial.forward(&x);
        let (serial_loss, grad) = softmax_cross_entropy(&logits, &y);
        serial.zero_grads();
        serial.backward(&grad);
        let serial_grads: Vec<Vec<f32>> =
            serial.params_mut().iter().map(|(_, g)| g.data().to_vec()).collect();

        for workers in [1usize, 2, 3, 4] {
            let mut master = Network::mlp(&[ds.dim(), 8, ds.classes()], 17);
            let mut pool = WorkerPool::new(factory(&ds), workers);
            let loss = pool.reduce_gradients(&mut master, &x, &y);
            assert!((loss - serial_loss).abs() < 1e-6, "loss with {workers} workers");
            for ((_, g), sref) in master.params_mut().iter().zip(&serial_grads) {
                for (a, b) in g.data().iter().zip(sref) {
                    assert!((a - b).abs() < 1e-5, "{workers} workers: grad {a} vs serial {b}");
                }
            }
        }
    }

    #[test]
    fn more_workers_than_samples_is_capped() {
        let ds = dataset();
        let (x, y) = ds.train_batch(&[0, 1]);
        let mut master = Network::mlp(&[ds.dim(), 8, ds.classes()], 17);
        let mut pool = WorkerPool::new(factory(&ds), 8);
        let loss = pool.reduce_gradients(&mut master, &x, &y);
        assert!(loss.is_finite());
    }

    #[test]
    fn parallel_training_step_converges_like_serial() {
        let ds = dataset();
        let idx: Vec<usize> = (0..ds.n_train()).collect();
        let (x, y) = ds.train_batch(&idx);

        let run = |workers: usize| -> Vec<f32> {
            let mut master = Network::mlp(&[ds.dim(), 8, ds.classes()], 17);
            let mut pool = WorkerPool::new(factory(&ds), workers);
            let mut opt = Sgd::new(
                SgdConfig {
                    learning_rate: 0.05,
                    momentum: 0.9,
                    weight_decay: 0.0,
                    nesterov: false,
                },
                &mut master,
            );
            for _ in 0..5 {
                pool.reduce_gradients(&mut master, &x, &y);
                opt.step(&mut master);
            }
            master.params_mut().iter().map(|(p, _)| p.data()[0]).collect()
        };
        let w1 = run(1);
        let w4 = run(4);
        for (a, b) in w1.iter().zip(&w4) {
            assert!((a - b).abs() < 1e-4, "5 steps diverged: {a} vs {b}");
        }
    }
}
