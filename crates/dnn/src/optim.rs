//! SGD with momentum — the paper's equations (8) and (9):
//!
//! ```text
//! V_{t+1} = µ V_t − α ∆W_t        (8)
//! W_{t+1} = W_t + V_{t+1}         (9)
//! ```
//!
//! With `µ = 0` the update degenerates to plain SGD, "the original
//! version" in the paper's words.

use crate::net::Network;
use crate::tensor::Tensor;

/// Optimiser hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Learning rate α (the paper's η).
    pub learning_rate: f32,
    /// Momentum µ ∈ [0, 1).
    pub momentum: f32,
    /// L2 weight decay λ: the gradient becomes `∆W + λW` (Caffe's
    /// `weight_decay`, 0.004 in the cifar10_full recipe).
    pub weight_decay: f32,
    /// Nesterov momentum (Sutskever, Martens, Dahl & Hinton — the paper's
    /// reference \[24\]): the update applies the velocity *after* the
    /// momentum step, `W += µV_{t+1} − α∆W`, which looks ahead along the
    /// momentum direction.
    pub nesterov: bool,
}

impl Default for SgdConfig {
    /// The paper's untuned Caffe baseline: η = 0.001, µ = 0.9.
    fn default() -> Self {
        Self { learning_rate: 0.001, momentum: 0.9, weight_decay: 0.0, nesterov: false }
    }
}

impl SgdConfig {
    /// Validates ranges.
    ///
    /// # Panics
    /// Panics on non-positive learning rate or momentum outside `[0, 1)`.
    pub fn validate(&self) {
        assert!(self.learning_rate > 0.0, "learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&self.momentum),
            "momentum must be in [0, 1), got {}",
            self.momentum
        );
        assert!(self.weight_decay >= 0.0, "weight decay must be non-negative");
    }
}

/// The optimiser state: one velocity tensor per parameter tensor.
#[derive(Debug)]
pub struct Sgd {
    config: SgdConfig,
    velocities: Vec<Tensor>,
}

impl Sgd {
    /// Creates the optimiser for a given network (velocities start at 0).
    pub fn new(config: SgdConfig, net: &mut Network) -> Self {
        config.validate();
        let velocities = net.params_mut().iter().map(|(p, _)| Tensor::zeros(p.shape())).collect();
        Self { config, velocities }
    }

    /// The active configuration.
    pub fn config(&self) -> SgdConfig {
        self.config
    }

    /// Overrides the learning rate (used by [`crate::schedule::LrSchedule`]
    /// between epochs; velocities are preserved).
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.config.learning_rate = lr;
    }

    /// Applies equations (8)–(9) to every parameter using the gradients
    /// currently accumulated in the network.
    pub fn step(&mut self, net: &mut Network) {
        let params = net.params_mut();
        assert_eq!(params.len(), self.velocities.len(), "network topology changed");
        let (lr, mu, wd) =
            (self.config.learning_rate, self.config.momentum, self.config.weight_decay);
        let nesterov = self.config.nesterov;
        for ((param, grad), vel) in params.into_iter().zip(&mut self.velocities) {
            for ((w, &g), v) in param.data_mut().iter_mut().zip(grad.data()).zip(vel.data_mut()) {
                let g = g + wd * *w; // L2 decay folded into the gradient
                *v = mu * *v - lr * g; // eq. (8)
                if nesterov {
                    // Look-ahead form of [24]: step by µV_{t+1} − αg.
                    *w += mu * *v - lr * g;
                } else {
                    *w += *v; // eq. (9)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net() -> Network {
        Network::mlp(&[1, 1], 7)
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut net = tiny_net();
        // Set a known weight, zero gradient: decay alone must shrink it.
        net.params_mut()[0].0.data_mut()[0] = 1.0;
        let mut opt = Sgd::new(
            SgdConfig { learning_rate: 0.1, momentum: 0.0, weight_decay: 0.5, nesterov: false },
            &mut net,
        );
        set_grads(&mut net, 0.0);
        opt.step(&mut net);
        let w = net.params_mut()[0].0.data()[0];
        assert!((w - 0.95).abs() < 1e-6, "w = {w}"); // 1 - 0.1*0.5*1
    }

    #[test]
    fn set_learning_rate_changes_future_steps() {
        let mut net = tiny_net();
        let w0 = net.params_mut()[0].0.data()[0];
        let mut opt = Sgd::new(
            SgdConfig { learning_rate: 0.1, momentum: 0.0, weight_decay: 0.0, nesterov: false },
            &mut net,
        );
        opt.set_learning_rate(0.2);
        set_grads(&mut net, 1.0);
        opt.step(&mut net);
        let w = net.params_mut()[0].0.data()[0];
        assert!((w - (w0 - 0.2)).abs() < 1e-6);
    }

    fn set_grads(net: &mut Network, value: f32) {
        for (_, g) in net.params_mut() {
            g.data_mut().fill(value);
        }
    }

    #[test]
    fn zero_momentum_is_plain_sgd() {
        let mut net = tiny_net();
        let w0: Vec<f32> = net.params_mut().iter().map(|(p, _)| p.data()[0]).collect();
        let mut opt = Sgd::new(
            SgdConfig { learning_rate: 0.1, momentum: 0.0, weight_decay: 0.0, nesterov: false },
            &mut net,
        );
        set_grads(&mut net, 2.0);
        opt.step(&mut net);
        for ((p, _), w) in net.params_mut().iter().zip(&w0) {
            assert!((p.data()[0] - (w - 0.2)).abs() < 1e-6);
        }
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut net = tiny_net();
        let w0 = net.params_mut()[0].0.data()[0];
        let mut opt = Sgd::new(
            SgdConfig { learning_rate: 0.1, momentum: 0.5, weight_decay: 0.0, nesterov: false },
            &mut net,
        );
        set_grads(&mut net, 1.0);
        opt.step(&mut net); // v = -0.1, w = w0 - 0.1
        set_grads(&mut net, 1.0);
        opt.step(&mut net); // v = -0.15, w = w0 - 0.25
        let w = net.params_mut()[0].0.data()[0];
        assert!((w - (w0 - 0.25)).abs() < 1e-6, "w0 {w0} -> {w}");
    }

    #[test]
    fn momentum_coasts_when_gradient_vanishes() {
        let mut net = tiny_net();
        let w0 = net.params_mut()[0].0.data()[0];
        let mut opt = Sgd::new(
            SgdConfig { learning_rate: 1.0, momentum: 0.9, weight_decay: 0.0, nesterov: false },
            &mut net,
        );
        set_grads(&mut net, 1.0);
        opt.step(&mut net); // v = -1
        set_grads(&mut net, 0.0);
        opt.step(&mut net); // v = -0.9: still moving
        let w = net.params_mut()[0].0.data()[0];
        assert!((w - (w0 - 1.9)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "momentum must be in [0, 1)")]
    fn rejects_momentum_of_one() {
        let mut net = tiny_net();
        let _ = Sgd::new(
            SgdConfig { learning_rate: 0.1, momentum: 1.0, weight_decay: 0.0, nesterov: false },
            &mut net,
        );
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_zero_lr() {
        let mut net = tiny_net();
        let _ = Sgd::new(
            SgdConfig { learning_rate: 0.0, momentum: 0.5, weight_decay: 0.0, nesterov: false },
            &mut net,
        );
    }

    #[test]
    fn nesterov_steps_further_along_persistent_gradients() {
        // With a constant gradient the Nesterov update moves farther per
        // step than classical momentum (it adds the look-ahead µV term).
        let run = |nesterov: bool| -> f32 {
            let mut net = tiny_net();
            let w0 = net.params_mut()[0].0.data()[0];
            let mut opt = Sgd::new(
                SgdConfig { learning_rate: 0.1, momentum: 0.9, weight_decay: 0.0, nesterov },
                &mut net,
            );
            for _ in 0..3 {
                set_grads(&mut net, 1.0);
                opt.step(&mut net);
            }
            w0 - net.params_mut()[0].0.data()[0]
        };
        let classical = run(false);
        let nesterov = run(true);
        assert!(nesterov > classical, "nesterov displacement {nesterov} vs classical {classical}");
    }

    #[test]
    fn nesterov_first_step_is_scaled_by_one_plus_mu() {
        let mut net = tiny_net();
        let w0 = net.params_mut()[0].0.data()[0];
        let mut opt = Sgd::new(
            SgdConfig { learning_rate: 0.1, momentum: 0.5, weight_decay: 0.0, nesterov: true },
            &mut net,
        );
        set_grads(&mut net, 1.0);
        opt.step(&mut net);
        // v = -0.1; w += 0.5*(-0.1) - 0.1 = -0.15.
        let w = net.params_mut()[0].0.data()[0];
        assert!((w - (w0 - 0.15)).abs() < 1e-6);
    }

    #[test]
    fn default_matches_caffe_baseline() {
        let c = SgdConfig::default();
        assert_eq!(c.learning_rate, 0.001);
        assert_eq!(c.momentum, 0.9);
    }
}
