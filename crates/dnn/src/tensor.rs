//! Minimal dense tensor with the operations the layers need.
//!
//! Deep-learning kernels are "mainly matrix-matrix multiply" (§IV-C), so
//! the core of this module is a cache-blocked single-precision GEMM.

/// Element type for DNN computation (Caffe default is also f32).
pub type Elem = f32;

/// A dense tensor: row-major data plus an explicit shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<Elem>,
}

impl Tensor {
    /// A tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] }
    }

    /// Builds from a flat buffer.
    ///
    /// # Panics
    /// Panics if the buffer length does not match the shape volume.
    pub fn from_vec(shape: &[usize], data: Vec<Elem>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "buffer length does not match shape {shape:?}"
        );
        Self { shape: shape.to_vec(), data }
    }

    /// The shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat immutable data access.
    #[inline]
    pub fn data(&self) -> &[Elem] {
        &self.data
    }

    /// Flat mutable data access.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [Elem] {
        &mut self.data
    }

    /// Reinterprets the tensor with a new shape of equal volume.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        assert_eq!(
            self.data.len(),
            shape.iter().product::<usize>(),
            "reshape to {shape:?} changes volume"
        );
        self.shape = shape.to_vec();
        self
    }

    /// 2-D row count (first dim).
    #[inline]
    pub fn rows(&self) -> usize {
        self.shape[0]
    }

    /// 2-D column count (product of trailing dims).
    #[inline]
    pub fn cols(&self) -> usize {
        self.shape[1..].iter().product()
    }

    /// Element of a 2-D tensor.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> Elem {
        self.data[i * self.cols() + j]
    }

    /// In-place elementwise add of a same-shaped tensor.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scale by a constant.
    pub fn scale(&mut self, k: Elem) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// Sum of squared elements.
    pub fn norm_sq(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum()
    }
}

/// `C = A · B` for 2-D tensors (`A: m×k`, `B: k×n`), cache-blocked ikj loop.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "inner dimensions differ: {k} vs {kb}");
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    const BLOCK: usize = 64;
    for i0 in (0..m).step_by(BLOCK) {
        for p0 in (0..k).step_by(BLOCK) {
            for i in i0..(i0 + BLOCK).min(m) {
                let crow = &mut cd[i * n..(i + 1) * n];
                for p in p0..(p0 + BLOCK).min(k) {
                    let aip = ad[i * k + p];
                    if aip == 0.0 {
                        continue;
                    }
                    let brow = &bd[p * n..(p + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += aip * bv;
                    }
                }
            }
        }
    }
    c
}

/// `C = Aᵀ · B` (`A: k×m`, `B: k×n` → `C: m×n`) without materialising Aᵀ.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "inner dimensions differ: {k} vs {kb}");
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut cd[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
    c
}

/// `C = A · Bᵀ` (`A: m×k`, `B: n×k` → `C: m×n`) without materialising Bᵀ.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(k, kb, "inner dimensions differ: {k} vs {kb}");
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            cd[i * n + j] = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(rows: usize, cols: usize, v: &[Elem]) -> Tensor {
        Tensor::from_vec(&[rows, cols], v.to_vec())
    }

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).reshape(&[3, 2]);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(2, 1), 6.0);
    }

    #[test]
    #[should_panic(expected = "changes volume")]
    fn reshape_rejects_volume_change() {
        let _ = Tensor::zeros(&[2, 2]).reshape(&[3, 2]);
    }

    #[test]
    fn matmul_small_known_product() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t2(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        // A is k×m = 3×2; Aᵀ·B with B 3×2.
        let a = t2(3, 2, &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]); // Aᵀ = [[1,2,3],[4,5,6]]
        let b = t2(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul_tn(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // B is n×k = 2×3 so Bᵀ is 3×2 = [[7,10],[8,11],[9,12]]
        let b = t2(2, 3, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul_nt(&a, &b);
        assert_eq!(c.data(), &[50.0, 68.0, 122.0, 167.0]);
    }

    #[test]
    fn blocked_matmul_matches_naive_on_odd_sizes() {
        // Sizes that do not divide the 64 block.
        let m = 65;
        let k = 67;
        let n = 3;
        let a = Tensor::from_vec(&[m, k], (0..m * k).map(|i| (i % 7) as Elem).collect());
        let b = Tensor::from_vec(&[k, n], (0..k * n).map(|i| (i % 5) as Elem).collect());
        let c = matmul(&a, &b);
        for i in [0usize, 31, 64] {
            for j in 0..n {
                let expect: Elem = (0..k).map(|p| a.at(i, p) * b.at(p, j)).sum();
                assert_eq!(c.at(i, j), expect, "({i},{j})");
            }
        }
    }

    #[test]
    fn add_scale_norm() {
        let mut a = t2(1, 3, &[1.0, 2.0, 3.0]);
        let b = t2(1, 3, &[1.0, 1.0, 1.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[2.0, 3.0, 4.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[4.0, 6.0, 8.0]);
        assert_eq!(a.norm_sq(), 16.0 + 36.0 + 64.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_rejects_mismatched_shapes() {
        let _ = matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[2, 2]));
    }
}
