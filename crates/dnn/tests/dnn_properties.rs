//! Property-based tests for the DNN substrate: analytic gradients vs
//! finite differences on random networks, loss invariants, and the
//! data-parallel reduction identity over arbitrary shard counts.

use dls_dnn::layers::Dense;
use dls_dnn::loss::{classification_accuracy, softmax_cross_entropy};
use dls_dnn::parallel::WorkerPool;
use dls_dnn::tensor::{matmul, matmul_nt, matmul_tn, Tensor};
use dls_dnn::Network;
use proptest::prelude::*;

/// Strategy: a small random input batch with values in a safe range.
fn arb_batch(max_rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_rows).prop_flat_map(move |rows| {
        proptest::collection::vec(-100i32..=100, rows * cols).prop_map(move |v| {
            Tensor::from_vec(&[rows, cols], v.into_iter().map(|x| x as f32 / 50.0).collect())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full-network gradient check: ∂loss/∂weights of a random two-layer
    /// stack matches central finite differences. (The stack is kink-free —
    /// finite differences straddle ReLU kinks at random inputs; ReLU's own
    /// gradient is checked at safe points in the layer unit tests.)
    #[test]
    fn network_loss_gradient_matches_finite_differences(
        x in arb_batch(4, 6),
        seed in 0u64..1000,
    ) {
        let classes = 3;
        let mut net = Network::new()
            .push(Dense::new(6, 5, seed))
            .push(Dense::new(5, classes, seed + 1));
        let labels: Vec<usize> = (0..x.rows()).map(|i| i % classes).collect();

        let logits = net.forward(&x);
        let (_, grad_logits) = softmax_cross_entropy(&logits, &labels);
        net.zero_grads();
        net.backward(&grad_logits);

        // Probe the first dense layer's weight gradient at a few slots.
        let analytic: Vec<f32> = {
            let params = net.params_mut();
            params[0].1.data().iter().copied().take(4).collect()
        };
        let eps = 1e-2f32;
        for (idx, &a) in analytic.iter().enumerate() {
            net.params_mut()[0].0.data_mut()[idx] += eps;
            let (fp, _) = softmax_cross_entropy(&net.forward(&x), &labels);
            net.params_mut()[0].0.data_mut()[idx] -= 2.0 * eps;
            let (fm, _) = softmax_cross_entropy(&net.forward(&x), &labels);
            net.params_mut()[0].0.data_mut()[idx] += eps;
            let numeric = ((fp - fm) / (2.0 * eps as f64)) as f32;
            prop_assert!(
                (numeric - a).abs() <= 2e-2 * (1.0 + numeric.abs().max(a.abs())),
                "w[{idx}]: numeric {numeric} vs analytic {a}"
            );
        }
    }

    /// Softmax cross-entropy invariants: loss ≥ 0, per-row gradient sums
    /// to zero, loss is shift-invariant in the logits.
    #[test]
    fn loss_invariants(x in arb_batch(5, 4), shift in -5.0f32..5.0) {
        let labels: Vec<usize> = (0..x.rows()).map(|i| i % 4).collect();
        let (loss, grad) = softmax_cross_entropy(&x, &labels);
        prop_assert!(loss >= 0.0 && loss.is_finite());
        for i in 0..x.rows() {
            let row_sum: f32 = grad.data()[i * 4..(i + 1) * 4].iter().sum();
            prop_assert!(row_sum.abs() < 1e-5, "row {i} grad sum {row_sum}");
        }
        // Shift invariance.
        let mut shifted = x.clone();
        for v in shifted.data_mut() {
            *v += shift;
        }
        let (loss2, _) = softmax_cross_entropy(&shifted, &labels);
        prop_assert!((loss - loss2).abs() < 1e-4, "{loss} vs {loss2}");
        // Accuracy is a valid fraction.
        let acc = classification_accuracy(&x, &labels);
        prop_assert!((0.0..=1.0).contains(&acc));
    }

    /// GEMM identities: (A·B)ᵀ-free variants agree with the plain product.
    #[test]
    fn matmul_transpose_variants_agree(
        a_data in proptest::collection::vec(-10i32..=10, 12),
        b_data in proptest::collection::vec(-10i32..=10, 8),
    ) {
        // A: 3x4, B: 4x2.
        let a = Tensor::from_vec(&[3, 4], a_data.iter().map(|&v| v as f32).collect());
        let b = Tensor::from_vec(&[4, 2], b_data.iter().map(|&v| v as f32).collect());
        let c = matmul(&a, &b);

        // matmul_tn(Aᵀ_storage, B) where Aᵀ_storage is A stored transposed.
        let mut at = Tensor::zeros(&[4, 3]);
        for i in 0..3 {
            for j in 0..4 {
                at.data_mut()[j * 3 + i] = a.at(i, j);
            }
        }
        let c_tn = matmul_tn(&at, &b);
        prop_assert_eq!(c.data(), c_tn.data());

        // matmul_nt(A, Bᵀ_storage).
        let mut bt = Tensor::zeros(&[2, 4]);
        for i in 0..4 {
            for j in 0..2 {
                bt.data_mut()[j * 4 + i] = b.at(i, j);
            }
        }
        let c_nt = matmul_nt(&a, &bt);
        prop_assert_eq!(c.data(), c_nt.data());
    }

    /// Data-parallel reduction equals the serial gradient for any worker
    /// count and any batch size (§IV-B's correctness claim).
    #[test]
    fn parallel_reduction_is_exact(x in arb_batch(8, 6), workers in 1usize..6) {
        let classes = 3;
        let labels: Vec<usize> = (0..x.rows()).map(|i| (i * 7) % classes).collect();
        let mut serial = Network::mlp(&[6, 4, classes], 77);
        let logits = serial.forward(&x);
        let (serial_loss, grad) = softmax_cross_entropy(&logits, &labels);
        serial.zero_grads();
        serial.backward(&grad);
        let expect: Vec<Vec<f32>> =
            serial.params_mut().iter().map(|(_, g)| g.data().to_vec()).collect();

        let mut master = Network::mlp(&[6, 4, classes], 77);
        let mut pool = WorkerPool::new(|| Network::mlp(&[6, 4, classes], 77), workers);
        let loss = pool.reduce_gradients(&mut master, &x, &labels);
        prop_assert!((loss - serial_loss).abs() < 1e-6);
        for ((_, g), e) in master.params_mut().iter().zip(&expect) {
            for (a, b) in g.data().iter().zip(e) {
                prop_assert!((a - b).abs() < 1e-5, "{a} vs {b} ({workers} workers)");
            }
        }
    }
}
