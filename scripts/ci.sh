#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
#
# Usage: scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> learned-selector smoke (train + inspect + schedule with it)"
model="$(mktemp -t dls_selector_XXXXXX.json)"
trap 'rm -f "$model"' EXIT
cargo run --release -q --bin dls -- train-selector "$model" --quick --analytic
cargo run --release -q --bin dls -- selector-info "$model"
cargo run --release -q --bin dls -- schedule @trefethen "learned:$model"

echo "==> bench smoke (criterion --test mode, one pass, no statistics)"
cargo bench -q -p dls-bench --bench smsv_block -- --test

echo "==> serve smoke (predict/schedule/stats over loopback + graceful drain, per discipline)"
for discipline in fifo priority slo; do
  out="$(cargo run --release -q -p dls-bench --bin repro_serve -- --smoke --discipline "$discipline")"
  echo "$out"
  # The stats snapshot must expose per-class SLO accounting.
  echo "$out" | grep -q "slo_violation_rate interactive=" \
    || { echo "serve smoke ($discipline): missing interactive slo_violation_rate" >&2; exit 1; }
  echo "$out" | grep -q "slo_violation_rate batch=" \
    || { echo "serve smoke ($discipline): missing batch slo_violation_rate" >&2; exit 1; }
  # The stats JSON must expose the fault/degradation counters and the
  # health endpoint must answer, even on a fault-free server.
  echo "$out" | grep -q "stats sections faults+degradation exposed, health status=" \
    || { echo "serve smoke ($discipline): missing fault/degradation counters or health" >&2; exit 1; }
done

echo "==> chaos smoke (seeded fault injection, watchdog-guarded)"
# The harness itself exits 2 on any hang and non-zero on any corrupted
# response, untyped failure, or failed clean probe.
out="$(cargo run --release -q -p dls-bench --bin repro_chaos -- --smoke --seeds 8)"
echo "$out"
echo "$out" | grep -q "zero hangs, zero corrupted responses" \
  || { echo "chaos smoke: missing clean-run summary" >&2; exit 1; }

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci OK"
