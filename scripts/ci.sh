#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
#
# Usage: scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> learned-selector smoke (train + inspect + schedule with it)"
model="$(mktemp -t dls_selector_XXXXXX.json)"
trap 'rm -f "$model"' EXIT
cargo run --release -q --bin dls -- train-selector "$model" --quick --analytic
cargo run --release -q --bin dls -- selector-info "$model"
cargo run --release -q --bin dls -- schedule @trefethen "learned:$model"

echo "==> bench smoke (criterion --test mode, one pass, no statistics)"
cargo bench -q -p dls-bench --bench smsv_block -- --test

echo "==> blocked-kernel smoke (block-size sweep; geomean floors 0.95x, COO/HYB/JDS 1.0x)"
bench_json="$(mktemp -t dls_bench_XXXXXX.json)"
trap 'rm -f "$model" "$bench_json"' EXIT
cargo run --release -q -p dls-bench --bin repro_smsv_block -- 5 "$bench_json" --check

echo "==> serve smoke (predict/schedule/stats over loopback + graceful drain, per discipline × frontend)"
declare -A parity
for frontend in threads reactor; do
  for discipline in fifo priority slo; do
    out="$(cargo run --release -q -p dls-bench --bin repro_serve -- --smoke --discipline "$discipline" --frontend "$frontend")"
    echo "$out"
    # The stats snapshot must expose per-class SLO accounting.
    echo "$out" | grep -q "slo_violation_rate interactive=" \
      || { echo "serve smoke ($discipline, $frontend): missing interactive slo_violation_rate" >&2; exit 1; }
    echo "$out" | grep -q "slo_violation_rate batch=" \
      || { echo "serve smoke ($discipline, $frontend): missing batch slo_violation_rate" >&2; exit 1; }
    # The stats JSON must expose the fault/degradation counters and the
    # health endpoint must answer, even on a fault-free server.
    echo "$out" | grep -q "stats sections faults+degradation exposed, health status=" \
      || { echo "serve smoke ($discipline, $frontend): missing fault/degradation counters or health" >&2; exit 1; }
    parity["$frontend/$discipline"]="$(echo "$out" | grep "^# parity " || true)"
    [ -n "${parity["$frontend/$discipline"]}" ] \
      || { echo "serve smoke ($discipline, $frontend): missing parity counter line" >&2; exit 1; }
  done
done
# The deterministic smoke sequence must land the same counters no matter
# which front end served it — threads and reactor are interchangeable.
for discipline in fifo priority slo; do
  if [ "${parity["threads/$discipline"]}" != "${parity["reactor/$discipline"]}" ]; then
    echo "serve smoke ($discipline): stats-counter parity broken between front ends" >&2
    echo "  threads: ${parity["threads/$discipline"]}" >&2
    echo "  reactor: ${parity["reactor/$discipline"]}" >&2
    exit 1
  fi
done
echo "==> serve parity OK (threads == reactor counters for fifo/priority/slo)"

echo "==> retrain smoke (online loop: live traffic -> telemetry -> forced retrain -> hot swap)"
for frontend in threads reactor; do
  out="$(cargo run --release -q -p dls-bench --bin repro_serve -- --retrain-smoke --frontend "$frontend")"
  echo "$out"
  # The smoke itself asserts the version bump and zero dropped requests;
  # the grep pins that those assertions actually ran.
  echo "$out" | grep -q "retrain smoke OK" \
    || { echo "retrain smoke ($frontend): missing success summary" >&2; exit 1; }
  echo "$out" | grep -q "0 dropped" \
    || { echo "retrain smoke ($frontend): missing zero-dropped assertion" >&2; exit 1; }
done

echo "==> online-selector gate (cross-machine regret: online/ensemble <= frozen CART)"
selector_json="$(mktemp -t dls_selector_bench_XXXXXX.json)"
trap 'rm -f "$model" "$bench_json" "$selector_json"' EXIT
cargo run --release -q -p dls-bench --bin repro_selector_online -- --quick --check "$selector_json"

echo "==> chaos smoke (seeded fault injection, watchdog-guarded, per frontend)"
# The harness itself exits 2 on any hang and non-zero on any corrupted
# response, untyped failure, or failed clean probe.
for frontend in threads reactor; do
  out="$(cargo run --release -q -p dls-bench --bin repro_chaos -- --smoke --seeds 8 --frontend "$frontend")"
  echo "$out"
  echo "$out" | grep -q "zero hangs, zero corrupted responses" \
    || { echo "chaos smoke ($frontend): missing clean-run summary" >&2; exit 1; }
done

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci OK"
