#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
#
# Usage: scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> learned-selector smoke (train + inspect + schedule with it)"
model="$(mktemp -t dls_selector_XXXXXX.json)"
trap 'rm -f "$model"' EXIT
cargo run --release -q --bin dls -- train-selector "$model" --quick --analytic
cargo run --release -q --bin dls -- selector-info "$model"
cargo run --release -q --bin dls -- schedule @trefethen "learned:$model"

echo "==> bench smoke (criterion --test mode, one pass, no statistics)"
cargo bench -q -p dls-bench --bench smsv_block -- --test

echo "==> serve smoke (predict/schedule/stats over loopback + graceful drain)"
cargo run --release -q -p dls-bench --bin repro_serve -- --smoke

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci OK"
