#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
#
# Usage: scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci OK"
