#!/usr/bin/env bash
# Performance suite: the paper-reproduction criterion benches plus the
# zero-copy batched SMSV engine measurement.
#
# Usage: scripts/bench.sh [reps]
#   reps — repetitions for the SMSV engine measurement (default 15).
#
# Emits BENCH_smsv.json at the repository root: per dataset x format, the
# median ns per SMSV product for the allocating kernel, the borrowed-view
# kernel and the blocked kernel (B = 8), plus heap allocations per call
# counted by a wrapping global allocator. smsv_view and steady-state
# smsv_block must report zero allocations.

set -euo pipefail
cd "$(dirname "$0")/.."

reps="${1:-15}"

echo "==> cargo build --release"
cargo build --release

echo "==> criterion: fig1_formats (per-format SMO, Figure 1 / Table III)"
cargo bench -q -p dls-bench --bench fig1_formats

echo "==> criterion: table6_adaptive (adaptive vs static scheduling, Table VI)"
cargo bench -q -p dls-bench --bench table6_adaptive

echo "==> criterion: smsv_block (smsv vs smsv_view vs smsv_block)"
cargo bench -q -p dls-bench --bench smsv_block

echo "==> SMSV engine measurement -> BENCH_smsv.json (median of ${reps} reps)"
cargo run --release -q -p dls-bench --bin repro_smsv_block -- "$reps" BENCH_smsv.json

echo "==> bench OK"
