//! The `Strategy` trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// How many times a filtering strategy retries before giving up.
const MAX_REJECTS: usize = 10_000;

/// A generator of random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply produces a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Retries generation until `f` accepts the value.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, reason, f }
    }

    /// Retries generation until `f` maps the value to `Some`.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, reason, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter: too many rejects ({})", self.reason);
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map: too many rejects ({})", self.reason);
    }
}

// ---- range strategies -------------------------------------------------

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, i64, i32, i8, u8);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f64, f32);

// ---- tuple strategies -------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---- collections ------------------------------------------------------

/// Length specification for [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with random length.
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

// ---- union (prop_oneof!) ----------------------------------------------

/// Object-safe strategy facade used by [`OneOf`].
pub trait DynStrategy {
    /// The type of generated values.
    type Value;
    /// Generates one value through dynamic dispatch.
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A boxed strategy with erased concrete type.
pub type BoxedStrategy<T> = Box<dyn DynStrategy<Value = T>>;

/// Boxes a strategy for use in [`OneOf`].
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Uniform choice among several strategies (the `prop_oneof!` macro).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds a union from boxed arms. Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[k].generate_dyn(rng)
    }
}
