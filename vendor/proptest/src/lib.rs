//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch crates, so this shim re-implements
//! the subset of proptest 1.x that the workspace's property tests use:
//! range/tuple/`Just`/`vec` strategies, `prop_map` / `prop_flat_map` /
//! `prop_filter` / `prop_filter_map`, `prop_oneof!`, the `proptest!` macro,
//! `prop_assert*!`, `prop_assume!` and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest: generation is plain Monte-Carlo from a
//! deterministic per-test seed and **failures do not shrink** — the failing
//! case number and panic message are still reported by the test harness.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// from `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current generated case when the assumption does not hold.
/// Only valid inside a `proptest!` body (expands to an early `return`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(());
        }
    };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Defines property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_cases(
                    stringify!($name),
                    config,
                    |__proptest_rng| {
                        $(
                            let $pat = $crate::strategy::Strategy::generate(
                                &($strat),
                                __proptest_rng,
                            );
                        )+
                        #[allow(unreachable_code)]
                        {
                            let __proptest_result: ::std::result::Result<(), ()> = (|| {
                                { $body }
                                ::std::result::Result::Ok(())
                            })();
                            __proptest_result.is_ok()
                        }
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}
