//! Deterministic case runner and configuration.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG for test-case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name so each property gets its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs `cases` generated cases of one property. The callback returns
/// `false` when the case was rejected by `prop_assume!` (it still counts
/// against the case budget, matching this shim's simple semantics).
pub fn run_cases(name: &str, config: ProptestConfig, mut case: impl FnMut(&mut TestRng) -> bool) {
    let mut rng = TestRng::from_name(name);
    let mut executed = 0u32;
    for _ in 0..config.cases {
        if case(&mut rng) {
            executed += 1;
        }
    }
    // Guard against assume-rejecting every single case silently.
    assert!(
        executed > 0 || config.cases == 0,
        "property {name}: every generated case was rejected by prop_assume!"
    );
}
