//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! real `rand` cannot be fetched. This shim implements the (small) subset of
//! the rand 0.8 API the workspace actually uses — `StdRng`, `SeedableRng`,
//! `Rng::{gen, gen_range, gen_bool}` and `seq::SliceRandom` — on top of a
//! deterministic xoshiro256++ generator seeded via SplitMix64, exactly the
//! construction the reference implementation recommends.

/// Uniform sampling support for `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value from the generator.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types `Rng::gen_range` can produce. Mirrors rand's `SampleUniform` so
/// the output type (not the range literal) drives inference.
pub trait SampleUniform: Sized + Copy {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_uniform!(usize, u64, u32, i64, i32, i8, u8);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_uniform!(f64, f32);

/// Ranges that `Rng::gen_range` accepts, generic over the element type.
pub trait SampleRange<T: SampleUniform> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A value drawn uniformly from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

/// Seedable generators (rand's `SeedableRng`, restricted to `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator, the stand-in for rand's
    /// `StdRng`. Not cryptographically secure (neither use here needs it).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (rand's `seq` module).
pub mod seq {
    use super::Rng;

    /// Shuffling and random choice over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        /// A uniformly random element, `None` on an empty slice.
        fn choose<'a, R: Rng>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
        /// `amount` distinct elements sampled without replacement, in
        /// selection order. Returns all elements (shuffled) when `amount`
        /// exceeds the slice length — matching rand's `choose_multiple`
        /// semantics, except the real crate returns a lazy iterator where
        /// this stub collects into a `Vec`.
        fn choose_multiple<'a, R: Rng>(&'a self, rng: &mut R, amount: usize)
            -> Vec<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }

        fn choose_multiple<'a, R: Rng>(&'a self, rng: &mut R, amount: usize) -> Vec<&'a T> {
            // Partial Fisher–Yates over an index table: the first `amount`
            // slots end up holding a uniform sample without replacement.
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + (rng.next_u64() % (idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx[..amount].iter().map(|&i| &self[i]).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = r.gen_range(0..4usize);
            assert!(v < 4);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..100 {
            let v = r.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
            let f = r.gen_range(0.25f64..8.0);
            assert!((0.25..8.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn choose_multiple_samples_without_replacement() {
        let mut r = StdRng::seed_from_u64(7);
        let v: Vec<usize> = (0..20).collect();
        let picked = v.choose_multiple(&mut r, 8);
        assert_eq!(picked.len(), 8);
        let mut sorted: Vec<usize> = picked.iter().map(|&&x| x).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "sample must be distinct");
        assert!(sorted.iter().all(|&x| x < 20));
        // Oversampling returns every element exactly once.
        let all = v.choose_multiple(&mut r, 100);
        assert_eq!(all.len(), 20);
        let mut sorted: Vec<usize> = all.iter().map(|&&x| x).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        // Empty slice and zero amount are fine.
        let empty: [usize; 0] = [];
        assert!(empty.choose_multiple(&mut r, 3).is_empty());
        assert!(v.choose_multiple(&mut r, 0).is_empty());
    }

    #[test]
    fn choose_multiple_is_deterministic_and_covers() {
        let a: Vec<&u32> = [1u32, 2, 3, 4, 5].choose_multiple(&mut StdRng::seed_from_u64(9), 3);
        let b: Vec<&u32> = [1u32, 2, 3, 4, 5].choose_multiple(&mut StdRng::seed_from_u64(9), 3);
        assert_eq!(a, b, "same seed, same sample");
        // Over many draws every element appears at least once.
        let v: Vec<usize> = (0..6).collect();
        let mut seen = [false; 6];
        let mut r = StdRng::seed_from_u64(10);
        for _ in 0..100 {
            for &x in v.choose_multiple(&mut r, 2) {
                seen[x] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_near_half() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
