//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box` and the `criterion_group!` / `criterion_main!`
//! macros — backed by a simple median-of-samples wall-clock timer with
//! plain-text output. No statistics engine, plotting, or baselines.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benched code.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `group/function/parameter`-style id from a function name + parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{function}/{parameter}") }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Throughput annotation (printed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing harness handed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Median seconds per iteration of the last `iter` call.
    last_median: f64,
}

impl Bencher {
    /// Times `f`, collecting `samples` samples of one call each (after one
    /// warm-up call) and recording the median.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f());
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        self.last_median = times[times.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    quick: bool,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples each benchmark takes (ignored in
    /// `--test` smoke mode, which pins everything to one sample).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = if self.quick { 1 } else { n.max(1) };
        self
    }

    /// Sets a target measurement time (accepted for API compatibility; the
    /// sample count drives measurement here).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benches `f` under `id`.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        run_one(label, self.sample_size, self.throughput, f);
        let _ = &self.criterion;
    }

    /// Benches `f` under `id` with an input passed through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id);
        run_one(label, self.sample_size, self.throughput, |b| f(b, input));
        let _ = &self.criterion;
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(
    label: String,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher { samples, last_median: f64::NAN };
    f(&mut b);
    let per_iter = b.last_median;
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            println!(
                "bench {label:<48} {per_iter:>12.3e} s/iter  {:>12.3e} elem/s",
                n as f64 / per_iter
            );
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            println!(
                "bench {label:<48} {per_iter:>12.3e} s/iter  {:>12.3e} B/s",
                n as f64 / per_iter
            );
        }
        _ => println!("bench {label:<48} {per_iter:>12.3e} s/iter"),
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_samples: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Real criterion's `--test` flag runs each bench once as a smoke
        // test; mirror that by clamping every benchmark to a single sample
        // (including ones that call `sample_size`).
        let quick = std::env::args().any(|a| a == "--test");
        Criterion { default_samples: if quick { 1 } else { 10 }, quick }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored (`--test` is
    /// honoured by `Default::default`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_samples;
        let quick = self.quick;
        BenchmarkGroup { criterion: self, name: name.into(), sample_size, quick, throughput: None }
    }

    /// Benches a standalone function.
    pub fn bench_function(&mut self, name: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_one(name.to_string(), self.default_samples, None, f);
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
