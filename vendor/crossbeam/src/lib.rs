//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements `crossbeam::thread::scope` — the only crossbeam API the
//! workspace uses — as a thin adapter over `std::thread::scope` (stable
//! since Rust 1.63). The crossbeam spawn closure receives a `&Scope`
//! argument (unused by all call sites, which write `|_|`), and `scope`
//! returns a `Result` that the call sites `.expect(..)`.

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    /// Error payload of a panicked scope: the panic value of the first
    /// panicking worker.
    pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

    /// A scope handle passed to spawn closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped worker.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the worker and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker inside the scope. The closure receives the scope
        /// itself (crossbeam's signature), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all workers are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panicking *unjoined* worker propagates the panic
    /// here rather than surfacing as `Err` — every call site in this
    /// workspace treats `Err` as fatal (`.expect`), so the behaviours match
    /// where it matters.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> =
                data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn workers_can_write_disjoint_chunks() {
        let mut out = vec![0usize; 8];
        let (a, b) = out.split_at_mut(4);
        crate::thread::scope(|s| {
            s.spawn(move |_| a.fill(1));
            s.spawn(move |_| b.fill(2));
        })
        .unwrap();
        assert_eq!(out, vec![1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap()).join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
