//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the two crossbeam APIs the workspace uses:
//! `crossbeam::thread::scope` as a thin adapter over `std::thread::scope`
//! (stable since Rust 1.63), and `crossbeam::channel` as a mutex+condvar
//! MPMC queue (both `Sender` and `Receiver` are `Clone`, matching the
//! real crate's semantics that the persistent SMSV worker pool relies on).
//! The crossbeam spawn closure receives a `&Scope` argument (unused by all
//! call sites, which write `|_|`), and `scope` returns a `Result` that the
//! call sites `.expect(..)`.

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    /// Error payload of a panicked scope: the panic value of the first
    /// panicking worker.
    pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

    /// A scope handle passed to spawn closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped worker.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the worker and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker inside the scope. The closure receives the scope
        /// itself (crossbeam's signature), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all workers are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panicking *unjoined* worker propagates the panic
    /// here rather than surfacing as `Err` — every call site in this
    /// workspace treats `Err` as fatal (`.expect`), so the behaviours match
    /// where it matters.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// MPMC channel API mirroring the subset of `crossbeam::channel` the
/// workspace uses: `unbounded()`, cloneable `Sender`/`Receiver`, blocking
/// `recv` and non-blocking `try_recv` with disconnect detection.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// Send failed because every `Receiver` was dropped; returns the
    /// unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Receive failed because every `Sender` was dropped and the queue
    /// is empty.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Non-blocking receive outcome when no message is ready.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is momentarily empty but senders remain.
        Empty,
        /// Every sender was dropped and the queue is drained.
        Disconnected,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// Sending half of an unbounded MPMC channel. Cloning adds a sender;
    /// dropping the last one disconnects blocked receivers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded MPMC channel. Cloning adds a
    /// receiver; each message is delivered to exactly one receiver.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, waking one blocked receiver. Fails only when
        /// all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            let disconnect = inner.senders == 0;
            drop(inner);
            if disconnect {
                // Wake every blocked receiver so it can observe the
                // disconnect instead of sleeping forever.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; `Err(RecvError)` once all
        /// senders are dropped and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(msg) = inner.queue.pop_front() {
                Ok(msg)
            } else if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.inner.lock().unwrap().receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> =
                data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn workers_can_write_disjoint_chunks() {
        let mut out = vec![0usize; 8];
        let (a, b) = out.split_at_mut(4);
        crate::thread::scope(|s| {
            s.spawn(move |_| a.fill(1));
            s.spawn(move |_| b.fill(2));
        })
        .unwrap();
        assert_eq!(out, vec![1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap()).join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }

    #[test]
    fn channel_delivers_in_order() {
        let (tx, rx) = crate::channel::unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..5).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn channel_recv_errs_after_all_senders_drop() {
        let (tx, rx) = crate::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1u32).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(crate::channel::RecvError));
    }

    #[test]
    fn channel_send_errs_after_all_receivers_drop() {
        let (tx, rx) = crate::channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(9u8), Err(crate::channel::SendError(9)));
    }

    #[test]
    fn channel_try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = crate::channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(crate::channel::TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(crate::channel::TryRecvError::Disconnected));
    }

    #[test]
    fn channel_fans_out_across_cloned_receivers() {
        let (tx, rx) = crate::channel::unbounded::<usize>();
        let rx2 = rx.clone();
        let consumed: Vec<usize> = crate::thread::scope(|s| {
            let a = s.spawn({
                let rx = rx.clone();
                move |_| (0..50).map(|_| rx.recv().unwrap()).collect::<Vec<_>>()
            });
            let b = s.spawn(move |_| (0..50).map(|_| rx2.recv().unwrap()).collect::<Vec<_>>());
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            let mut all = a.join().unwrap();
            all.extend(b.join().unwrap());
            all
        })
        .unwrap();
        let mut sorted = consumed;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
