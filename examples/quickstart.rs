//! Quickstart: let the runtime scheduler pick a storage format for a small
//! dataset, train an SVM on the scheduled layout, and predict.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dls::prelude::*;
use dls_data::labels::linear_teacher_labels;

fn main() {
    // Synthesise a twin of the paper's "adult" dataset, scaled down.
    let spec = DatasetSpec::by_name("adult").expect("known dataset").scaled(10);
    let data = generate(&spec, 42);
    let labels = linear_teacher_labels(&data, 0.0, 7);
    println!(
        "dataset: {} samples x {} features, {} non-zeros",
        data.rows(),
        data.cols(),
        data.nnz()
    );

    // 1. Schedule: extract the nine influencing parameters and pick a format.
    let scheduled = LayoutScheduler::new().schedule(&data);
    println!("\n{}", scheduled.report());

    // 2. Train on the scheduled layout.
    let params = SmoParams { kernel: KernelKind::Linear, ..Default::default() };
    let (model, stats) =
        dls::svm::train_with_stats(scheduled.matrix(), &labels, &params).expect("valid problem");
    println!(
        "\ntrained in {} iterations ({} support vectors, converged: {})",
        stats.iterations, stats.n_support_vectors, stats.converged
    );

    // 3. Predict on the training rows.
    let preds: Vec<f64> =
        (0..data.rows()).map(|i| model.predict_label(&data.row_sparse(i))).collect();
    let acc = dls::svm::accuracy(&preds, &labels);
    println!("training accuracy: {acc:.3}");
}
