//! DNN hyperparameter auto-tuning (paper §IV): tune batch size, learning
//! rate and momentum on the synthetic CIFAR-like task, then project the
//! result onto the five hardware platforms with the calibrated throughput
//! model.
//!
//! ```text
//! cargo run --release --example dnn_tuning
//! ```

use dls::dnn::tuning::AutoTuner;
use dls::dnn::TrainerConfig;
use dls::hw::{ThroughputModel, PLATFORMS};

fn main() {
    let ds = dls_dnn::Dataset::cifar_like(dls_dnn::CifarLikeConfig {
        train: 800,
        test: 240,
        noise: 1.2,
        ..Default::default()
    });
    println!(
        "CIFAR-like twin: {} train / {} test, {} classes, dim {}",
        ds.n_train(),
        ds.n_test(),
        ds.classes(),
        ds.dim()
    );

    let tuner = AutoTuner {
        hidden: vec![32],
        net_seed: 9,
        base: TrainerConfig { target_accuracy: 0.8, max_epochs: 100, ..Default::default() },
    };
    let result = tuner.run(
        &ds,
        &[32, 100, 200, 400, 800],
        &[0.001, 0.002, 0.004, 0.008, 0.016],
        &[0.90, 0.93, 0.95, 0.97, 0.99],
    );

    println!("\ngreedy tuning pipeline (B -> eta -> mu):");
    for (stage, p) in [
        ("after batch   ", &result.after_batch),
        ("after lr      ", &result.after_lr),
        ("after momentum", &result.after_momentum),
    ] {
        println!(
            "  {stage}: B={:<4} eta={:<6} mu={:<5} -> {} iterations, {} epochs, acc {:.3}",
            p.batch_size,
            p.learning_rate,
            p.momentum,
            p.outcome.iterations,
            p.outcome.epochs,
            p.outcome.final_accuracy
        );
    }

    // Project the winner onto each platform.
    let winner = &result.after_momentum;
    println!("\nprojected time for the tuned run on each platform:");
    for p in &PLATFORMS {
        let model = ThroughputModel::new(*p);
        let secs = model.time_for(winner.outcome.iterations, winner.batch_size);
        println!("  {:<12} {:>10.2} s  (${:>8.0})", p.name, secs, p.price_usd);
    }
}
