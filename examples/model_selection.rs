//! The full model-selection pipeline on a scheduled layout: stratified
//! split → feature scaling → grid search with cross-validation → final
//! training → probability calibration → held-out evaluation → model
//! persistence.
//!
//! ```text
//! cargo run --release --example model_selection
//! ```

use dls::prelude::*;
use dls::svm::{grid_search, write_model, ProbabilisticModel};
use dls_data::labels::linear_teacher_labels;
use dls_data::preprocess::{FeatureScaler, ScaleRange};
use dls_data::stratified_split;

fn main() {
    // 1. Data: a noisy twin of "aloi".
    let spec = DatasetSpec::by_name("aloi").expect("known dataset").scaled(4);
    let data = generate(&spec, 42);
    let labels = linear_teacher_labels(&data, 0.08, 42);
    println!("dataset: {} x {} ({} nnz), 8% label noise", data.rows(), data.cols(), data.nnz());

    // 2. Stratified split.
    let split = stratified_split(&data, &labels, 0.25, 7);
    println!("split: {} train / {} test", split.train_x.rows(), split.test_x.rows());

    // 3. Scale features on the training side only.
    let scaler = FeatureScaler::fit(&split.train_x, ScaleRange::ZeroOne);
    let train_x = scaler.transform(&split.train_x);
    let test_x = scaler.transform(&split.test_x);

    // 4. Let the scheduler pick the layout for the training matrix.
    let scheduled = LayoutScheduler::new().schedule(&train_x);
    println!("scheduled format: {} — {}", scheduled.format(), scheduled.report().reason);

    // 5. Grid search (C, gamma) with 4-fold CV.
    let base = SmoParams::default();
    let result = grid_search(
        scheduled.matrix(),
        &split.train_y,
        &base,
        &[0.1, 1.0, 10.0],
        &[0.05, 0.5, 2.0],
        4,
    )
    .expect("grid search runs");
    println!(
        "grid search: best C = {}, kernel = {:?}, CV accuracy {:.3}",
        result.best_params.c, result.best_params.kernel, result.best_accuracy
    );

    // 6. Final model on the full training split, with probabilities.
    let model =
        train(scheduled.matrix(), &split.train_y, &result.best_params).expect("final training");
    let train_rows: Vec<_> = (0..train_x.rows()).map(|i| train_x.row_sparse(i)).collect();
    let prob = ProbabilisticModel::calibrate(model, &train_rows, &split.train_y);

    // 7. Held-out evaluation.
    let preds: Vec<f64> =
        (0..test_x.rows()).map(|i| prob.model().predict_label(&test_x.row_sparse(i))).collect();
    let acc = dls::svm::accuracy(&preds, &split.test_y);
    println!("held-out accuracy: {acc:.3}");
    let p0 = prob.predict_probability(&test_x.row_sparse(0));
    println!("P(+1 | first test sample) = {p0:.3}");

    // 8. Persist the model.
    let path = std::env::temp_dir().join("dls_model_selection.model");
    let mut file = std::fs::File::create(&path).expect("create model file");
    write_model(&mut file, prob.model()).expect("write model");
    println!("model written to {}", path.display());
}
