//! Format explorer: a small CLI that reads a LIBSVM-format file (or
//! generates a named synthetic twin), prints its nine influencing
//! parameters, Table II storage predictions, and what each selection
//! strategy would choose.
//!
//! ```text
//! cargo run --release --example format_explorer -- path/to/data.libsvm
//! cargo run --release --example format_explorer -- @mnist      # synthetic twin
//! ```

use dls::prelude::*;
use dls_core::CostModelSelector;
use dls_sparse::storage::predicted_storage_elems;
use std::io::BufReader;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "@adult".to_string());
    let matrix = if let Some(name) = arg.strip_prefix('@') {
        let spec = DatasetSpec::by_name(name)
            .unwrap_or_else(|| panic!("unknown synthetic dataset {name}"))
            .scaled(2);
        generate(&spec, 42)
    } else {
        let file = std::fs::File::open(&arg).unwrap_or_else(|e| panic!("open {arg}: {e}"));
        let ds = dls_data::libsvm::read(BufReader::new(file))
            .unwrap_or_else(|e| panic!("parse {arg}: {e}"));
        ds.matrix
    };

    let features = MatrixFeatures::from_triplets(&matrix);
    println!("influencing parameters (paper Table IV):\n  {features}\n");
    println!("derived fitness measures:");
    println!("  row imbalance (sqrt(vdim)/adim): {:.3}", features.row_imbalance());
    println!("  ELL padding ratio:               {:.3}", features.ell_padding_ratio());
    println!("  DIA padding ratio:               {:.3}\n", features.dia_padding_ratio());

    println!("predicted storage (Table II model) and cost-model time (Eq. 7):");
    let cost = CostModelSelector::default();
    for fmt in Format::BASIC {
        println!(
            "  {:<5} {:>14.0} elems {:>12.3e} s",
            fmt.name(),
            predicted_storage_elems(fmt, &features),
            cost.predicted_time(fmt, &features)
        );
    }

    println!("\nselections:");
    for (label, strategy) in [
        ("rule-based", SelectionStrategy::RuleBased),
        ("cost-model", SelectionStrategy::CostModel),
        ("empirical ", SelectionStrategy::Empirical),
    ] {
        let report = LayoutScheduler::with_strategy(strategy).select_only(&matrix);
        println!("  {label}: {} — {}", report.chosen, report.reason);
    }
}
