//! ε-Support Vector Regression on a scheduled layout (paper §II-A: the
//! regression problem shares the classification data structure, only
//! `y ∈ R` differs).
//!
//! Fits a noisy sine with the Gaussian kernel and reports the tube fit,
//! then shows how ε trades support-vector count against accuracy.
//!
//! ```text
//! cargo run --release --example regression
//! ```

use dls::prelude::*;
use dls::svm::{train_svr, SvrParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Noisy sine samples.
    let n = 80;
    let mut rng = StdRng::seed_from_u64(7);
    let mut t = TripletMatrix::new(n, 1);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let x = i as f64 / (n - 1) as f64 * std::f64::consts::TAU;
        t.push(i, 0, x);
        y.push(x.sin() + (rng.gen::<f64>() - 0.5) * 0.1);
    }
    let t = t.compact();

    // The scheduler works for regression matrices identically.
    let scheduled = LayoutScheduler::new().schedule(&t);
    println!("scheduled format: {}", scheduled.format());

    println!("\n{:>8} {:>10} {:>12} {:>10}", "epsilon", "SVs", "RMSE", "converged");
    for eps in [0.01, 0.05, 0.1, 0.2, 0.5] {
        let params = SvrParams {
            kernel: KernelKind::Gaussian { gamma: 1.5 },
            c: 50.0,
            epsilon: eps,
            max_iterations: 200_000,
            ..Default::default()
        };
        let (model, stats) = train_svr(scheduled.matrix(), &y, &params).expect("valid problem");
        let rmse = (0..n)
            .map(|i| {
                let e = model.decision_function(&t.row_sparse(i)) - y[i];
                e * e
            })
            .sum::<f64>()
            .sqrt()
            / (n as f64).sqrt();
        println!("{eps:>8.2} {:>10} {rmse:>12.4} {:>10}", stats.n_support_vectors, stats.converged);
    }
    println!("\nwider tubes need fewer support vectors at the cost of fit error —");
    println!("the ε-insensitive trade-off.");
}
