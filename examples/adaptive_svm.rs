//! Adaptive SVM over the paper's dataset suite: compare the three
//! selection strategies (rules / cost model / empirical micro-benchmark)
//! and show what each one picks and why.
//!
//! ```text
//! cargo run --release --example adaptive_svm
//! ```

use dls::prelude::*;

fn main() {
    let strategies = [
        ("rule-based", SelectionStrategy::RuleBased),
        ("cost-model", SelectionStrategy::CostModel),
        ("empirical", SelectionStrategy::Empirical),
    ];
    println!("{:<14} {:>12} {:>12} {:>12}", "dataset", "rule-based", "cost-model", "empirical");

    for name in ["adult", "aloi", "mnist", "connect-4", "trefethen", "leukemia"] {
        let spec = DatasetSpec::by_name(name).expect("known dataset");
        // Scale moderately so the empirical probe stays fast.
        let data = generate(&spec.scaled(2), 42);
        let mut picks = Vec::new();
        for (_, strategy) in &strategies {
            let report = LayoutScheduler::with_strategy(*strategy).select_only(&data);
            picks.push(report.chosen.name());
        }
        println!("{:<14} {:>12} {:>12} {:>12}", name, picks[0], picks[1], picks[2]);
    }

    // Show a full report for one dataset.
    let data = generate(DatasetSpec::by_name("trefethen").unwrap(), 42);
    println!("\nfull decision report for trefethen:");
    for (label, strategy) in &strategies {
        let report = LayoutScheduler::with_strategy(*strategy).select_only(&data);
        println!("\n[{label}]\n{report}");
    }
    println!("\nNote: the rule system encodes the paper's Ivy-Bridge/MIC heuristics;");
    println!("the empirical tuner adapts to *this* machine, so they can disagree");
    println!("on datasets whose best format is hardware-dependent (high-vdim sets).");
}
