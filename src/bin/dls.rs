//! `dls` — command-line front end for the layout scheduler.
//!
//! ```text
//! dls features  <data.libsvm | @dataset>            nine influencing parameters
//! dls schedule  <data.libsvm | @dataset> [strategy] [--reactive]
//!                                                   pick a storage format; with
//!                                                   --reactive, train and
//!                                                   re-schedule mid-SMO
//! dls train     <data.libsvm | @dataset> [strategy] schedule + SMO training
//! dls bench     <data.libsvm | @dataset> [iters]    per-format SMO timing
//! dls stats     <data.libsvm | @dataset> [strategy] [iters] [--cache <file>]
//!                                                   SMSV telemetry snapshot;
//!                                                   --cache persists tuning
//!                                                   decisions across runs
//! dls scale     <in.libsvm> <out.libsvm> [01|pm1]   feature scaling
//! dls serve     [addr] [--models a,b]               host quick-trained models
//!               [--discipline fifo|priority|slo]    (queue discipline, default slo)
//!               [--frontend threads|reactor]        I/O front end: thread-per-conn
//!               [--read-timeout-ms N]               or the epoll event loop with
//!               [--idle-timeout-ms N]               pipelined protocol v3;
//!               [--no-brownout] [--chaos-seed N]    --chaos-seed arms the seeded
//!                                                   fault-injection plan (demo)
//!               [--online [--retrain-ms N]]         online learning: telemetry
//!                                                   feeds a background retrainer
//!                                                   that hot-swaps the selector
//! dls stats     --serve <addr> [--health]           live telemetry snapshot (or
//!                                                   health ladder) from a
//!                                                   running server, with an
//!                                                   online-selector summary
//! dls train-selector [out.json] [--quick] [--analytic] [--seed N]
//!                    [--reps N] [--passes N] [--margin F]
//!                                                   fit a decision-tree model on
//!                                                   the synthetic grid; the
//!                                                   measured-label gate knobs
//!                                                   tune noise rejection
//! dls selector-info <model.json>                    inspect a trained model
//! ```
//!
//! `@name` loads the synthetic twin of a paper dataset (e.g. `@adult`).
//! Strategies: `rule`, `rule-host`, `cost`, `empirical`, a fixed format
//! name (`CSR`, …), or `learned[:model.json]` — a decision tree trained by
//! `dls train-selector` (without a path, a quick analytic model is fitted
//! in-memory on the spot).

use dls::prelude::*;
use dls_data::labels::linear_teacher_labels;
use dls_data::preprocess::{FeatureScaler, ScaleRange};
use std::io::BufReader;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("features") => cmd_features(&args[1..]),
        Some("schedule") => cmd_schedule(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("scale") => cmd_scale(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("train-selector") => cmd_train_selector(&args[1..]),
        Some("selector-info") => cmd_selector_info(&args[1..]),
        _ => {
            eprintln!(
                "usage: dls <features|schedule|train|bench|stats|scale|serve|train-selector|selector-info> ..."
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Loads a dataset: `@name` → synthetic twin, anything else → LIBSVM file.
fn load(source: &str) -> Result<(TripletMatrix, Vec<f64>), String> {
    if let Some(name) = source.strip_prefix('@') {
        let spec = DatasetSpec::by_name(name)
            .ok_or_else(|| format!("unknown synthetic dataset: {name}"))?
            .scaled(2);
        let t = generate(&spec, 42);
        let y = linear_teacher_labels(&t, 0.0, 42);
        Ok((t, y))
    } else {
        let file = std::fs::File::open(source).map_err(|e| format!("open {source}: {e}"))?;
        let ds = dls_data::libsvm::read(BufReader::new(file))
            .map_err(|e| format!("parse {source}: {e}"))?;
        // Map arbitrary labels to ±1 by sign for binary training.
        let y = ds.labels.iter().map(|&l| if l > 0.0 { 1.0 } else { -1.0 }).collect();
        Ok((ds.matrix, y))
    }
}

fn parse_strategy(arg: Option<&String>) -> Result<SelectionStrategy, String> {
    match arg.map(String::as_str) {
        None | Some("rule") => Ok(SelectionStrategy::RuleBased),
        Some("rule-host") => Ok(SelectionStrategy::RuleBasedHost),
        Some("cost") => Ok(SelectionStrategy::CostModel),
        Some("empirical") => Ok(SelectionStrategy::Empirical),
        Some(f) => f
            .parse::<Format>()
            .map(SelectionStrategy::Fixed)
            .map_err(|_| format!("unknown strategy or format: {f}")),
    }
}

/// Builds the selector behind a strategy argument. `learned[:model.json]`
/// dispatches to `dls-learn`; everything else goes through the
/// [`SelectionStrategy`] enum.
fn build_selector(arg: Option<&String>) -> Result<Box<dyn FormatSelector>, String> {
    let s = arg.map(String::as_str);
    if s == Some("learned") {
        eprintln!(
            "note: no model path given — fitting a quick analytic model in-memory \
             (run `dls train-selector` to persist one)"
        );
        let cfg =
            TrainConfig { quick: true, mode: LabelMode::analytic_flat(), ..Default::default() };
        return Ok(Box::new(LearnedSelector::new(train_selector(&cfg).model)));
    }
    if let Some(path) = s.and_then(|x| x.strip_prefix("learned:")) {
        return Ok(Box::new(LearnedSelector::from_file(path)?));
    }
    parse_strategy(arg).map(|st| st.selector())
}

fn cmd_features(args: &[String]) -> Result<(), String> {
    let source = args.first().ok_or("features: missing data source")?;
    let (t, _) = load(source)?;
    let f = MatrixFeatures::from_triplets(&t);
    println!("{f}");
    println!("row imbalance: {:.3}", f.row_imbalance());
    println!("ELL padding:   {:.3}", f.ell_padding_ratio());
    println!("DIA padding:   {:.3}", f.dia_padding_ratio());
    Ok(())
}

fn cmd_schedule(args: &[String]) -> Result<(), String> {
    let reactive = args.iter().any(|a| a == "--reactive");
    let pos: Vec<&String> = args.iter().filter(|a| a.as_str() != "--reactive").collect();
    let source = pos.first().ok_or("schedule: missing data source")?;
    let selector = build_selector(pos.get(1).copied())?;
    let (t, y) = load(source)?;
    let scheduler = LayoutScheduler::with_selector(selector);
    if !reactive {
        let report = scheduler.select_only(&t);
        println!("{report}");
        return Ok(());
    }

    // Reactive: train with telemetry and let measured SMSV throughput
    // override the up-front choice mid-SMO. The kernel cache is disabled
    // so every iteration exercises the layout under observation.
    let params = SmoParams { kernel: KernelKind::Linear, cache_bytes: 0, ..Default::default() };
    let start = Instant::now();
    let (_, report) =
        ReactiveScheduler::new(scheduler).train(&t, &y, &params).map_err(|e| e.to_string())?;
    let secs = start.elapsed().as_secs_f64();
    println!("{}", report.initial);
    for s in &report.switches {
        println!(
            "re-scheduled @ iteration {}: {} -> {} (measured {:.3e} s/call, target est {:.3e})",
            s.at_iteration,
            s.from,
            s.to,
            s.measured_secs_per_call,
            s.estimated_target_secs_per_call
        );
    }
    println!(
        "final format: {} after {} iterations in {secs:.3}s ({} mid-training switches)",
        report.final_format,
        report.stats.iterations,
        report.switches.len()
    );
    println!("telemetry: {}", report.telemetry.to_json());
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let source = args.first().ok_or("train: missing data source")?;
    let selector = build_selector(args.get(1))?;
    let (t, y) = load(source)?;
    let scheduled = LayoutScheduler::with_selector(selector).schedule(&t);
    println!("scheduled format: {}", scheduled.format());

    let params = SmoParams { kernel: KernelKind::Linear, ..Default::default() };
    let start = Instant::now();
    let (model, stats) =
        dls::svm::train_with_stats(scheduled.matrix(), &y, &params).map_err(|e| e.to_string())?;
    let secs = start.elapsed().as_secs_f64();

    let preds: Vec<f64> = (0..t.rows()).map(|i| model.predict_label(&t.row_sparse(i))).collect();
    println!(
        "trained in {secs:.3}s: {} iterations, {} SVs, converged {}, training accuracy {:.3}",
        stats.iterations,
        stats.n_support_vectors,
        stats.converged,
        dls::svm::accuracy(&preds, &y)
    );
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let source = args.first().ok_or("bench: missing data source")?;
    let iters: usize = args.get(1).map(|s| s.parse().unwrap_or(20)).unwrap_or(20);
    let (t, y) = load(source)?;
    println!("{:<6} {:>14} {:>12}", "format", "seconds", "speedup");
    let mut times = Vec::new();
    for fmt in Format::BASIC {
        let m = AnyMatrix::from_triplets(fmt, &t);
        let params = SmoParams {
            kernel: KernelKind::Linear,
            tolerance: 1e-12,
            max_iterations: iters,
            cache_bytes: 0,
            ..Default::default()
        };
        let start = Instant::now();
        let _ = dls::svm::train_with_stats(&m, &y, &params).map_err(|e| e.to_string())?;
        times.push((fmt, start.elapsed().as_secs_f64()));
    }
    let slowest = times.iter().map(|(_, s)| *s).fold(0.0, f64::max);
    for (fmt, secs) in times {
        println!("{:<6} {:>14.3e} {:>11.2}x", fmt.name(), secs, slowest / secs);
    }
    Ok(())
}

/// Quick-trains one model on a synthetic twin for serving: small enough
/// to be ready in seconds, real enough to give the scheduler structure.
fn quick_served_model(
    name: &str,
    scheduler: &LayoutScheduler,
) -> Result<dls::serve::ServedModel, String> {
    let spec = DatasetSpec::by_name(name)
        .ok_or_else(|| format!("unknown synthetic dataset: {name}"))?
        .scaled(16);
    let t = generate(&spec, 42);
    let y = linear_teacher_labels(&t, 0.05, 42);
    let x = CsrMatrix::from_triplets(&t);
    let params = SmoParams {
        kernel: KernelKind::Linear,
        tolerance: 1e-2,
        max_iterations: 2_000,
        ..Default::default()
    };
    let model = dls::svm::train(&x, &y, &params).map_err(|e| e.to_string())?;
    Ok(dls::serve::ServedModel::new(name, model, scheduler))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let addr = args
        .iter()
        .find(|a| !a.starts_with("--") && a.contains(':'))
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:0".to_string());
    let models: Vec<String> = args
        .iter()
        .position(|a| a == "--models")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| vec!["adult".to_string(), "mnist".to_string()]);
    let discipline = args
        .iter()
        .position(|a| a == "--discipline")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("slo");
    let discipline = dls::serve::parse_discipline(discipline)?;
    let frontend: dls::serve::Frontend = args
        .iter()
        .position(|a| a == "--frontend")
        .map(|i| {
            args.get(i + 1)
                .ok_or_else(|| "serve: --frontend needs threads|reactor".to_string())
                .and_then(|v| v.parse())
        })
        .transpose()?
        .unwrap_or(dls::serve::Frontend::Threads);
    let millis_flag = |name: &str| -> Result<Option<std::time::Duration>, String> {
        args.iter()
            .position(|a| a == name)
            .map(|i| {
                args.get(i + 1)
                    .and_then(|v| v.parse::<u64>().ok())
                    .map(std::time::Duration::from_millis)
                    .ok_or_else(|| format!("serve: {name} needs a millisecond count"))
            })
            .transpose()
    };
    let read_timeout = millis_flag("--read-timeout-ms")?;
    let write_timeout = millis_flag("--write-timeout-ms")?;
    let idle_timeout = millis_flag("--idle-timeout-ms")?;
    let no_brownout = args.iter().any(|a| a == "--no-brownout");
    let chaos_seed: Option<u64> = args
        .iter()
        .position(|a| a == "--chaos-seed")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| "serve: --chaos-seed needs an integer seed".to_string())
        })
        .transpose()?;
    let online = args.iter().any(|a| a == "--online");
    let retrain_interval = millis_flag("--retrain-ms")?;

    let scheduler = LayoutScheduler::new();
    let mut registry = dls::serve::ModelRegistry::new();
    for name in &models {
        println!("training {name} ...");
        let served = quick_served_model(name, &scheduler)?;
        println!(
            "  {} support vectors, scheduled format {}",
            served.model().n_support_vectors(),
            served.format().map(|f| f.name()).unwrap_or("-")
        );
        registry.insert(served);
    }

    let fault = match chaos_seed {
        Some(seed) => {
            println!("chaos: fault-injection plan armed from seed {seed}");
            dls::serve::FaultInjector::new(dls::serve::fault::FaultPlan::from_seed(seed))
        }
        None => dls::serve::FaultInjector::none(),
    };
    // With --online the scheduler selects through the feedback hub's
    // swappable handle: executed sweeps feed the telemetry ring, a
    // background thread retrains on it, and accepted models are
    // hot-swapped in without pausing serving.
    let hub = online.then(|| {
        let defaults = dls::serve::FeedbackConfig::default();
        dls::serve::FeedbackHub::new(dls::serve::FeedbackConfig {
            interval: retrain_interval.unwrap_or(defaults.interval),
            ..defaults
        })
    });
    let executor = dls::serve::ExecutorConfig {
        discipline,
        brownout: dls::serve::BrownoutConfig { enabled: !no_brownout, ..Default::default() },
        fault,
        feedback: hub.clone(),
        ..Default::default()
    };
    let defaults = dls::serve::ServerConfig::default();
    let config = dls::serve::ServerConfig {
        addr,
        executor,
        read_timeout: read_timeout.unwrap_or(defaults.read_timeout),
        write_timeout: write_timeout.unwrap_or(defaults.write_timeout),
        idle_timeout: idle_timeout.unwrap_or(defaults.idle_timeout),
        frontend,
    };
    let serving_scheduler = match &hub {
        Some(hub) => LayoutScheduler::with_selector(hub.selector()),
        None => LayoutScheduler::new(),
    };
    let handle =
        dls::serve::start(registry, serving_scheduler, config).map_err(|e| format!("bind: {e}"))?;
    if let Some(hub) = &hub {
        println!(
            "online learning: model v{}, retrain every {:?} once {} observations buffer",
            hub.version(),
            hub.config().interval,
            hub.config().min_observations
        );
    }
    println!(
        "listening on {} (frontend: {}, queue discipline: {}, brown-out {})",
        handle.local_addr(),
        frontend,
        handle.executor().discipline().name(),
        if no_brownout { "off" } else { "on" }
    );
    println!("telemetry: dls stats --serve {}  (add --health for the ladder)", handle.local_addr());
    println!("stop:      a client Shutdown frame (ServeClient::shutdown) drains and exits");
    handle.join();
    println!("drained cleanly");
    Ok(())
}

/// `dls stats --serve <addr> [--health]`: fetch and pretty-print a live
/// telemetry snapshot, or the health ladder (degradation state per model).
fn cmd_stats_serve(addr: &str, health: bool) -> Result<(), String> {
    let mut client =
        dls::serve::ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let json = if health {
        match client.request(&dls::serve::Request::Health).map_err(|e| format!("health: {e}"))? {
            dls::serve::Response::Health(json) => json,
            other => return Err(format!("health: unexpected response {other:?}")),
        }
    } else {
        client.stats().map_err(|e| format!("stats: {e}"))?
    };
    let doc = dls::core::json::parse(&json)?;
    print!("{}", doc.to_json_pretty());
    // Surface the online-learning loop in one line: which model is live,
    // how it votes, how often the confidence gate fell back to the rules,
    // and how the last retraining cycle ended.
    if let Some(sel) = doc.get("selector") {
        let n = |k: &str| sel.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
        println!(
            "selector: model v{} ({}), confidence fallback {:.1}% ({}/{}), \
             {} observations ({} dropped), last retrain: {}",
            n("active_version"),
            match n("ensemble_size") {
                0 => "analytic rules".to_string(),
                1 => "single tree".to_string(),
                k => format!("{k}-tree forest"),
            },
            sel.get("fallback_rate").and_then(|v| v.as_f64()).unwrap_or(0.0) * 100.0,
            n("fallbacks"),
            n("decisions"),
            n("observations"),
            n("observations_dropped"),
            sel.get("last_retrain_outcome").and_then(|v| v.as_str()).unwrap_or("none"),
        );
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    if let Some(i) = args.iter().position(|a| a == "--serve") {
        let addr = args.get(i + 1).ok_or("stats: --serve needs an address")?;
        return cmd_stats_serve(addr, args.iter().any(|a| a == "--health"));
    }
    let cache_path = args
        .iter()
        .position(|a| a == "--cache")
        .map(|i| args.get(i + 1).cloned().ok_or("stats: --cache needs a file path"))
        .transpose()?;
    let pos: Vec<&String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if a.as_str() == "--cache" {
                    skip_next = true;
                    return false;
                }
                true
            })
            .collect()
    };
    let source = pos.first().ok_or("stats: missing data source")?;
    let iters: usize = pos.get(2).and_then(|s| s.parse().ok()).unwrap_or(200);
    let (t, y) = load(source)?;

    // The tuning cache wraps whatever selector the strategy names: repeated
    // runs against the same data skip selection work entirely, and with
    // --cache the fingerprint -> decision map persists across processes.
    let mut cache = TuningCache::new(build_selector(pos.get(1).copied())?);
    if let Some(path) = &cache_path {
        if std::path::Path::new(path).exists() {
            let n = cache.load_file(path)?;
            println!("tuning cache: loaded {n} entries from {path}");
        }
    }
    let features = MatrixFeatures::from_triplets(&t);
    let report = cache.select(&t, &features);
    println!("scheduled format: {} (block {}) ({})", report.chosen, report.block, report.reason);

    let counters = SmsvCounters::shared();
    let m = InstrumentedMatrix::new(AnyMatrix::from_triplets(report.chosen, &t), counters.clone());
    let mut monitor = KernelMonitor::new(counters);
    let params = SmoParams {
        kernel: KernelKind::Linear,
        tolerance: 1e-12,
        max_iterations: iters,
        cache_bytes: 0,
        ..Default::default()
    };
    let (_, stats) = dls::svm::train_with_stats(&m, &y, &params).map_err(|e| e.to_string())?;
    monitor.tick();
    let snap = monitor.snapshot();
    println!("{} SMO iterations, {} SMSV calls\n", stats.iterations, stats.smsv_count);
    println!("{}", TelemetrySnapshot::csv_header());
    for row in snap.to_csv_rows() {
        println!("{row}");
    }
    println!("\n{}", snap.to_json());
    println!(
        "\ntuning cache: {} entries, {} hits, {} misses this run",
        cache.len(),
        cache.hits(),
        cache.misses()
    );
    if let Some(path) = &cache_path {
        cache.save_file(path).map_err(|e| format!("write {path}: {e}"))?;
        println!("tuning cache: saved to {path}");
    }
    Ok(())
}

fn cmd_train_selector(args: &[String]) -> Result<(), String> {
    let quick = args.iter().any(|a| a == "--quick");
    let analytic = args.iter().any(|a| a == "--analytic");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .map(|i| {
            args.get(i + 1)
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or("train-selector: --seed needs an integer")
        })
        .transpose()?;
    // Measured-label gate knobs (see `LabelMode::Measured`): reps per pass,
    // pass count for the majority vote, and the winner-margin threshold.
    let gate_flag = |name: &'static str| {
        args.iter()
            .position(|a| a == name)
            .map(|i| {
                args.get(i + 1)
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|v| *v >= 0.0)
                    .ok_or_else(|| format!("train-selector: {name} needs a non-negative number"))
            })
            .transpose()
    };
    let reps = gate_flag("--reps")?;
    let passes = gate_flag("--passes")?;
    let margin = gate_flag("--margin")?;
    if analytic && (reps.is_some() || passes.is_some() || margin.is_some()) {
        return Err("train-selector: --reps/--passes/--margin tune the measured-label gate; \
             they have no effect with --analytic"
            .into());
    }
    let value_flags = ["--seed", "--reps", "--passes", "--margin"];
    let out_path = {
        let mut skip_next = false;
        args.iter()
            .find(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if value_flags.contains(&a.as_str()) {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .cloned()
            .unwrap_or_else(|| "selector_model.json".to_string())
    };

    let mut cfg = TrainConfig { quick, ..Default::default() };
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    if analytic {
        cfg.mode = LabelMode::analytic_flat();
    } else if let LabelMode::Measured {
        reps: default_reps,
        passes: default_passes,
        min_margin: default_margin,
    } = LabelMode::default()
    {
        cfg.mode = LabelMode::Measured {
            reps: reps.map_or(default_reps, |v| v as usize),
            passes: passes.map_or(default_passes, |v| v as usize),
            min_margin: margin.unwrap_or(default_margin),
        };
    }
    let labels = match cfg.mode {
        LabelMode::Measured { reps, passes, min_margin } => {
            format!("measured (reps {reps}, passes {passes}, margin {:.1}%)", min_margin * 100.0)
        }
        LabelMode::Analytic { .. } => "analytic".to_string(),
    };
    println!(
        "training on the {} grid, {labels} labels, seed {} ...",
        if quick { "quick" } else { "full" },
        cfg.seed
    );
    let start = Instant::now();
    let out = train_selector(&cfg);
    let secs = start.elapsed().as_secs_f64();
    let m = &out.model.meta;
    println!(
        "labelled {} train + {} holdout matrices in {secs:.1}s \
         ({} measured, {} analytic fallback, {} analytic)",
        m.samples,
        out.holdout.len(),
        m.measured,
        m.analytic_fallback,
        m.analytic
    );
    println!(
        "tree: depth {}, {} leaves, predicts {:?}",
        out.model.tree.depth(),
        out.model.tree.n_leaves(),
        out.model.tree.predictable_formats().iter().map(|f| f.name()).collect::<Vec<_>>()
    );

    let grade = |name: &str, samples: &[dls::learn::LabelledSample]| {
        let picks: Vec<Format> = samples.iter().map(|s| out.model.tree.predict(&s.x)).collect();
        dls::learn::evaluate(name, samples, &picks)
    };
    for summary in [grade("train", &out.train), grade("holdout", &out.holdout)] {
        println!(
            "{:<8} agreement {:>5.1}%  mean regret {:>6.2}%  max regret {:>6.2}% (n={})",
            summary.name,
            summary.agreement * 100.0,
            summary.mean_regret * 100.0,
            summary.max_regret * 100.0,
            summary.n
        );
    }
    out.model.save_file(&out_path).map_err(|e| format!("write {out_path}: {e}"))?;
    println!("model written to {out_path}");
    println!("use it with: dls schedule @adult learned:{out_path}");
    Ok(())
}

fn cmd_selector_info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("selector-info: missing model path")?;
    let model = TrainedModel::load_file(path)?;
    let m = &model.meta;
    // The raw document carries the format version the loader validated.
    let doc_version = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| dls::core::json::parse(&text).ok())
        .and_then(|doc| doc.get("version").and_then(|v| v.as_u64()))
        .unwrap_or(0);
    println!(
        "model: {path} (document v{doc_version}, this build reads v{}..=v{})",
        dls::learn::MIN_MODEL_VERSION,
        dls::learn::MODEL_VERSION
    );
    println!(
        "trained on {} samples (grid={}, seed={}): {} measured, {} analytic fallback, {} analytic",
        m.samples, m.grid, m.seed, m.measured, m.analytic_fallback, m.analytic
    );
    match &model.ensemble {
        Some(forest) => println!(
            "ensemble: {}-tree bagged forest (majority vote with vote-margin confidence)",
            forest.len()
        ),
        None => println!("ensemble: none (single tree votes alone)"),
    }
    let p = model.tree.params();
    println!(
        "tree: depth {} (max {}), {} leaves, min_leaf {}, min_gain {:e}",
        model.tree.depth(),
        p.max_depth,
        model.tree.n_leaves(),
        p.min_leaf,
        p.min_gain
    );
    println!(
        "predictable formats: {}",
        model.tree.predictable_formats().iter().map(|f| f.name()).collect::<Vec<_>>().join(", ")
    );
    match &model.blocks {
        Some(blocks) => {
            println!("\nblock trees (learned tuned block per format):");
            for (fmt, tree) in &blocks.trees {
                println!("  {:<5} depth {}, {} leaves", fmt.name(), tree.depth(), tree.n_leaves());
            }
        }
        None => println!("block trees: none (pre-calibration model; kernels fall back to B=32)"),
    }
    println!("\nsplits per feature:");
    let counts = model.tree.feature_split_counts();
    let mut ranked: Vec<(usize, &str)> =
        counts.iter().copied().zip(dls::learn::FEATURE_NAMES).collect();
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(b.1)));
    for (count, name) in ranked {
        if count > 0 {
            println!("  {name:<16} {count}");
        }
    }
    Ok(())
}

fn cmd_scale(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("scale: missing input file")?;
    let output = args.get(1).ok_or("scale: missing output file")?;
    let range = match args.get(2).map(String::as_str) {
        None | Some("01") => ScaleRange::ZeroOne,
        Some("pm1") => ScaleRange::SymmetricOne,
        Some(r) => return Err(format!("unknown range: {r} (use 01 or pm1)")),
    };
    let file = std::fs::File::open(input).map_err(|e| format!("open {input}: {e}"))?;
    let ds = dls_data::libsvm::read(BufReader::new(file)).map_err(|e| e.to_string())?;
    let scaler = FeatureScaler::fit(&ds.matrix, range);
    let scaled = scaler.transform(&ds.matrix);
    let mut out = std::fs::File::create(output).map_err(|e| format!("create {output}: {e}"))?;
    dls_data::libsvm::write(&mut out, &scaled, &ds.labels).map_err(|e| e.to_string())?;
    println!("scaled {} rows x {} cols -> {output}", scaled.rows(), scaled.cols());
    Ok(())
}
