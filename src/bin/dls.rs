//! `dls` — command-line front end for the layout scheduler.
//!
//! ```text
//! dls features  <data.libsvm | @dataset>            nine influencing parameters
//! dls schedule  <data.libsvm | @dataset> [strategy] [--reactive]
//!                                                   pick a storage format; with
//!                                                   --reactive, train and
//!                                                   re-schedule mid-SMO
//! dls train     <data.libsvm | @dataset> [strategy] schedule + SMO training
//! dls bench     <data.libsvm | @dataset> [iters]    per-format SMO timing
//! dls stats     <data.libsvm | @dataset> [strategy] [iters]
//!                                                   SMSV telemetry snapshot
//! dls scale     <in.libsvm> <out.libsvm> [01|pm1]   feature scaling
//! ```
//!
//! `@name` loads the synthetic twin of a paper dataset (e.g. `@adult`).

use dls::prelude::*;
use dls_data::labels::linear_teacher_labels;
use dls_data::preprocess::{FeatureScaler, ScaleRange};
use std::io::BufReader;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("features") => cmd_features(&args[1..]),
        Some("schedule") => cmd_schedule(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("scale") => cmd_scale(&args[1..]),
        _ => {
            eprintln!(
                "usage: dls <features|schedule|train|bench|stats|scale> <data.libsvm | @dataset> ..."
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Loads a dataset: `@name` → synthetic twin, anything else → LIBSVM file.
fn load(source: &str) -> Result<(TripletMatrix, Vec<f64>), String> {
    if let Some(name) = source.strip_prefix('@') {
        let spec = DatasetSpec::by_name(name)
            .ok_or_else(|| format!("unknown synthetic dataset: {name}"))?
            .scaled(2);
        let t = generate(&spec, 42);
        let y = linear_teacher_labels(&t, 0.0, 42);
        Ok((t, y))
    } else {
        let file = std::fs::File::open(source).map_err(|e| format!("open {source}: {e}"))?;
        let ds = dls_data::libsvm::read(BufReader::new(file))
            .map_err(|e| format!("parse {source}: {e}"))?;
        // Map arbitrary labels to ±1 by sign for binary training.
        let y = ds.labels.iter().map(|&l| if l > 0.0 { 1.0 } else { -1.0 }).collect();
        Ok((ds.matrix, y))
    }
}

fn parse_strategy(arg: Option<&String>) -> Result<SelectionStrategy, String> {
    match arg.map(String::as_str) {
        None | Some("rule") => Ok(SelectionStrategy::RuleBased),
        Some("rule-host") => Ok(SelectionStrategy::RuleBasedHost),
        Some("cost") => Ok(SelectionStrategy::CostModel),
        Some("empirical") => Ok(SelectionStrategy::Empirical),
        Some(f) => f
            .parse::<Format>()
            .map(SelectionStrategy::Fixed)
            .map_err(|_| format!("unknown strategy or format: {f}")),
    }
}

fn cmd_features(args: &[String]) -> Result<(), String> {
    let source = args.first().ok_or("features: missing data source")?;
    let (t, _) = load(source)?;
    let f = MatrixFeatures::from_triplets(&t);
    println!("{f}");
    println!("row imbalance: {:.3}", f.row_imbalance());
    println!("ELL padding:   {:.3}", f.ell_padding_ratio());
    println!("DIA padding:   {:.3}", f.dia_padding_ratio());
    Ok(())
}

fn cmd_schedule(args: &[String]) -> Result<(), String> {
    let reactive = args.iter().any(|a| a == "--reactive");
    let pos: Vec<&String> = args.iter().filter(|a| a.as_str() != "--reactive").collect();
    let source = pos.first().ok_or("schedule: missing data source")?;
    let strategy = parse_strategy(pos.get(1).copied())?;
    let (t, y) = load(source)?;
    let scheduler = LayoutScheduler::with_strategy(strategy);
    if !reactive {
        let report = scheduler.select_only(&t);
        println!("{report}");
        return Ok(());
    }

    // Reactive: train with telemetry and let measured SMSV throughput
    // override the up-front choice mid-SMO. The kernel cache is disabled
    // so every iteration exercises the layout under observation.
    let params = SmoParams { kernel: KernelKind::Linear, cache_bytes: 0, ..Default::default() };
    let start = Instant::now();
    let (_, report) =
        ReactiveScheduler::new(scheduler).train(&t, &y, &params).map_err(|e| e.to_string())?;
    let secs = start.elapsed().as_secs_f64();
    println!("{}", report.initial);
    for s in &report.switches {
        println!(
            "re-scheduled @ iteration {}: {} -> {} (measured {:.3e} s/call, target est {:.3e})",
            s.at_iteration,
            s.from,
            s.to,
            s.measured_secs_per_call,
            s.estimated_target_secs_per_call
        );
    }
    println!(
        "final format: {} after {} iterations in {secs:.3}s ({} mid-training switches)",
        report.final_format,
        report.stats.iterations,
        report.switches.len()
    );
    println!("telemetry: {}", report.telemetry.to_json());
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let source = args.first().ok_or("train: missing data source")?;
    let strategy = parse_strategy(args.get(1))?;
    let (t, y) = load(source)?;
    let scheduled = LayoutScheduler::with_strategy(strategy).schedule(&t);
    println!("scheduled format: {}", scheduled.format());

    let params = SmoParams { kernel: KernelKind::Linear, ..Default::default() };
    let start = Instant::now();
    let (model, stats) =
        dls::svm::train_with_stats(scheduled.matrix(), &y, &params).map_err(|e| e.to_string())?;
    let secs = start.elapsed().as_secs_f64();

    let preds: Vec<f64> = (0..t.rows()).map(|i| model.predict_label(&t.row_sparse(i))).collect();
    println!(
        "trained in {secs:.3}s: {} iterations, {} SVs, converged {}, training accuracy {:.3}",
        stats.iterations,
        stats.n_support_vectors,
        stats.converged,
        dls::svm::accuracy(&preds, &y)
    );
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let source = args.first().ok_or("bench: missing data source")?;
    let iters: usize = args.get(1).map(|s| s.parse().unwrap_or(20)).unwrap_or(20);
    let (t, y) = load(source)?;
    println!("{:<6} {:>14} {:>12}", "format", "seconds", "speedup");
    let mut times = Vec::new();
    for fmt in Format::BASIC {
        let m = AnyMatrix::from_triplets(fmt, &t);
        let params = SmoParams {
            kernel: KernelKind::Linear,
            tolerance: 1e-12,
            max_iterations: iters,
            cache_bytes: 0,
            ..Default::default()
        };
        let start = Instant::now();
        let _ = dls::svm::train_with_stats(&m, &y, &params).map_err(|e| e.to_string())?;
        times.push((fmt, start.elapsed().as_secs_f64()));
    }
    let slowest = times.iter().map(|(_, s)| *s).fold(0.0, f64::max);
    for (fmt, secs) in times {
        println!("{:<6} {:>14.3e} {:>11.2}x", fmt.name(), secs, slowest / secs);
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let source = args.first().ok_or("stats: missing data source")?;
    let strategy = parse_strategy(args.get(1))?;
    let iters: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200);
    let (t, y) = load(source)?;
    let report = LayoutScheduler::with_strategy(strategy).select_only(&t);
    println!("scheduled format: {} ({})", report.chosen, report.reason);

    let counters = SmsvCounters::shared();
    let m = InstrumentedMatrix::new(AnyMatrix::from_triplets(report.chosen, &t), counters.clone());
    let mut monitor = KernelMonitor::new(counters);
    let params = SmoParams {
        kernel: KernelKind::Linear,
        tolerance: 1e-12,
        max_iterations: iters,
        cache_bytes: 0,
        ..Default::default()
    };
    let (_, stats) = dls::svm::train_with_stats(&m, &y, &params).map_err(|e| e.to_string())?;
    monitor.tick();
    let snap = monitor.snapshot();
    println!("{} SMO iterations, {} SMSV calls\n", stats.iterations, stats.smsv_count);
    println!("{}", TelemetrySnapshot::csv_header());
    for row in snap.to_csv_rows() {
        println!("{row}");
    }
    println!("\n{}", snap.to_json());
    Ok(())
}

fn cmd_scale(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("scale: missing input file")?;
    let output = args.get(1).ok_or("scale: missing output file")?;
    let range = match args.get(2).map(String::as_str) {
        None | Some("01") => ScaleRange::ZeroOne,
        Some("pm1") => ScaleRange::SymmetricOne,
        Some(r) => return Err(format!("unknown range: {r} (use 01 or pm1)")),
    };
    let file = std::fs::File::open(input).map_err(|e| format!("open {input}: {e}"))?;
    let ds = dls_data::libsvm::read(BufReader::new(file)).map_err(|e| e.to_string())?;
    let scaler = FeatureScaler::fit(&ds.matrix, range);
    let scaled = scaler.transform(&ds.matrix);
    let mut out = std::fs::File::create(output).map_err(|e| format!("create {output}: {e}"))?;
    dls_data::libsvm::write(&mut out, &scaled, &ds.labels).map_err(|e| e.to_string())?;
    println!("scaled {} rows x {} cols -> {output}", scaled.rows(), scaled.cols());
    Ok(())
}
