#![warn(missing_docs)]

//! # dls — Data Layout Scheduling for machine learning datasets
//!
//! Umbrella crate re-exporting the whole workspace. This is a reproduction
//! of You & Demmel, *Runtime Data Layout Scheduling for Machine Learning
//! Dataset* (ICPP 2017).
//!
//! ## Quick start
//!
//! ```
//! use dls::prelude::*;
//!
//! // A small dataset: rows = samples, cols = features.
//! let mut t = TripletMatrix::new(4, 3);
//! t.push(0, 0, 1.0);
//! t.push(1, 1, 1.0);
//! t.push(2, 0, -1.0);
//! t.push(3, 2, -1.0);
//! let t = t.compact();
//!
//! // Let the runtime scheduler pick the storage format.
//! let scheduled = LayoutScheduler::new().schedule(&t);
//! println!("selected format: {}", scheduled.format());
//!
//! // Train an SVM on the scheduled layout.
//! let labels = vec![1.0, 1.0, -1.0, -1.0];
//! let params = SmoParams::default();
//! let model = train(scheduled.matrix(), &labels, &params).unwrap();
//! assert_eq!(model.predict_label(&t.row_sparse(0)), 1.0);
//! ```

pub use dls_baseline as baseline;
pub use dls_core as core;
pub use dls_data as data;
pub use dls_dnn as dnn;
pub use dls_hw as hw;
pub use dls_learn as learn;
pub use dls_serve as serve;
pub use dls_sparse as sparse;
pub use dls_svm as svm;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use dls_core::{
        CostModelSelector, EmpiricalSelector, FixedSelector, FormatScore, FormatSelector,
        KernelMonitor, LayoutScheduler, ReactiveConfig, ReactiveReport, ReactiveScheduler,
        RuleBasedSelector, ScheduledMatrix, SelectionReport, SelectionStrategy, TelemetrySnapshot,
        TuningCache,
    };
    pub use dls_data::{controlled, specs, synth::generate, DatasetSpec};
    pub use dls_dnn::{Network, SgdConfig, Trainer};
    pub use dls_hw::{Platform, PriceModel};
    pub use dls_learn::{train_selector, LabelMode, LearnedSelector, TrainConfig, TrainedModel};
    pub use dls_sparse::{
        AnyMatrix, CooMatrix, CsrMatrix, DenseMatrix, DiaMatrix, EllMatrix, Format,
        InstrumentedMatrix, MatrixFeatures, MatrixFormat, SmsvCounters, SparseVec, TripletMatrix,
    };
    pub use dls_svm::{train, KernelKind, SmoParams, SvmModel};
}
